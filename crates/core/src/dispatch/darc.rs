//! The DARC dispatch engine (paper §3 Algorithm 1, §4.3.3).
//!
//! [`DarcEngine`] is the paper's contribution, shared verbatim by the
//! discrete-event simulator and the threaded runtime. It owns the typed
//! queues, the free-worker table, the workload profiler, and the current
//! worker reservation, and implements:
//!
//! * **Algorithm 1** — walk typed queues in ascending profiled service
//!   time; dispatch the head of the first non-empty queue onto a free
//!   reserved worker, else onto a free *stealable* worker (a core reserved
//!   for a longer group); spillway cores serve ungrouped and UNKNOWN
//!   requests last.
//! * **c-FCFS warm-up** — before the first profiling window completes the
//!   engine dispatches in strict global arrival order.
//! * **Reservation updates** — when the profiler reports a full window, a
//!   deviated demand vector, and an SLO-violating queueing delay, the
//!   engine commits the window and installs a fresh reservation.
//! * **Flow control** — arrivals to a full typed queue are rejected back
//!   to the caller (dropped), shedding load only for the overloaded type.

use std::sync::Arc;

use persephone_telemetry::{DispatchKind, Telemetry};

use super::common::{tslot, WorkerTable};
use super::engine::{Dispatch, EngineReport, ScheduleEngine};
use super::{EngineConfig, EngineMode, OverloadConfig};
use crate::arena::ArenaRing;
use crate::profile::Profiler;
use crate::queue::TypedQueue;
use crate::reserve::{reserve, Reservation, ReserveConfig};
use crate::time::Nanos;
use crate::types::{TypeId, WorkerId};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Gathering the first profiling window, dispatching c-FCFS.
    Warmup,
    /// DARC with dynamic reservation updates.
    Darc,
    /// DARC with a frozen reservation.
    Frozen,
}

/// The DARC scheduling engine.
///
/// `R` is the opaque request representation: a buffer pointer in the
/// runtime, a small token in the simulator.
///
/// # Examples
///
/// ```
/// use persephone_core::dispatch::{DarcEngine, EngineConfig};
/// use persephone_core::time::Nanos;
/// use persephone_core::types::TypeId;
///
/// // Two types, two workers, trivially small profiling window.
/// let mut cfg = EngineConfig::darc(2);
/// cfg.profiler.min_samples = 2;
/// let mut eng: DarcEngine<u64> = DarcEngine::new(cfg, 2, &[None, None]);
///
/// let now = Nanos::from_micros(1);
/// eng.enqueue(TypeId::new(0), 7, now).unwrap();
/// let d = eng.poll(now).expect("a free worker exists");
/// assert_eq!(d.req, 7);
/// eng.complete(d.worker, Nanos::from_micros(1), now + Nanos::from_micros(1));
/// ```
#[derive(Clone, Debug)]
pub struct DarcEngine<R> {
    queues: Vec<TypedQueue<R>>,
    unknown: TypedQueue<R>,
    seq: u64,
    workers: WorkerTable,
    overload: OverloadConfig,
    /// Deadline-expired requests awaiting pickup by the caller (answered
    /// with `Dropped` in the runtime, counted in the simulator).
    expired_buf: ArenaRing<(TypeId, R)>,
    expired_total: u64,
    reservation: Reservation,
    profiler: Profiler,
    phase: Phase,
    /// Dispatch order over grouped types (ascending service time).
    priority: Vec<TypeId>,
    /// Types outside every group: serviced on spillway cores only.
    spill_types: Vec<TypeId>,
    reserve_cfg: ReserveConfig,
    updates: u64,
    num_types: usize,
    /// Optional always-on instruments; every hook is lock-free and
    /// allocation-free, so attaching telemetry is safe on hot paths.
    telemetry: Option<Arc<Telemetry>>,
    /// Demand vector at the last install, for the update-trigger Δ.
    last_demands: Vec<f64>,
    /// Pre-warmed scratch for the per-completion staleness check, so the
    /// hot path folds the live demand vector without allocating.
    demand_scratch: Vec<f64>,
}

impl<R> DarcEngine<R> {
    /// Creates an engine for `num_types` request types.
    ///
    /// `hints[i]` optionally seeds type `i`'s service-time estimate; with
    /// hints for every type, [`EngineMode::Dynamic`] skips the c-FCFS
    /// warm-up and installs a hint-based reservation immediately.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.num_workers == 0` or `hints.len() != num_types`.
    pub fn new(cfg: EngineConfig, num_types: usize, hints: &[Option<Nanos>]) -> Self {
        assert!(cfg.num_workers > 0, "need at least one worker");
        let profiler = Profiler::new(cfg.profiler.clone(), num_types, hints);
        let queues = (0..num_types)
            .map(|_| TypedQueue::new(cfg.queue_capacity))
            .collect();
        let unknown = TypedQueue::new(cfg.queue_capacity);
        let mut eng = DarcEngine {
            queues,
            unknown,
            seq: 0,
            workers: WorkerTable::new(cfg.num_workers),
            overload: cfg.overload,
            expired_buf: ArenaRing::new(),
            expired_total: 0,
            reservation: Reservation::all_shared(num_types, cfg.num_workers),
            profiler,
            phase: Phase::Warmup,
            priority: Vec::new(),
            spill_types: Vec::new(),
            reserve_cfg: ReserveConfig {
                num_workers: cfg.num_workers,
                delta: cfg.reserve.delta,
                spillway: cfg.reserve.spillway.min(cfg.num_workers),
            },
            updates: 0,
            num_types,
            telemetry: None,
            last_demands: vec![0.0; num_types],
            demand_scratch: vec![0.0; num_types],
        };
        match cfg.mode {
            EngineMode::Static(res) => {
                eng.install(res);
                eng.phase = Phase::Frozen;
            }
            EngineMode::Dynamic => {
                if hints.iter().all(|h| h.is_some()) && num_types > 0 {
                    // Fully hinted: reserve immediately from the hints.
                    let stats = eng.profiler.commit_window();
                    let res = reserve(&stats, &eng.reserve_cfg);
                    eng.install(res);
                    eng.phase = Phase::Darc;
                } else {
                    eng.phase = Phase::Warmup;
                }
            }
        }
        eng
    }

    /// Attaches a telemetry registry: from here on the engine records
    /// arrivals, queue depths, dispatch kinds, sojourns, drops, and
    /// reservation-update events into it. Sized independently from the
    /// engine, so a registry can outlive resizes.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = Some(telemetry);
    }

    /// The attached telemetry registry, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// Telemetry slot for `ty` (UNKNOWN and out-of-range types map to
    /// the registry's overflow slot).
    fn tslot(&self, ty: TypeId) -> usize {
        tslot(ty, self.num_types)
    }

    /// Number of application workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Number of registered request types (excluding UNKNOWN).
    pub fn num_types(&self) -> usize {
        self.num_types
    }

    /// The active reservation.
    pub fn reservation(&self) -> &Reservation {
        &self.reservation
    }

    /// The workload profiler (read-only view).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Reservation updates installed since start (warm-up exit included).
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Whether the engine is still in its c-FCFS warm-up window.
    pub fn in_warmup(&self) -> bool {
        self.phase == Phase::Warmup
    }

    /// Workers currently idle.
    pub fn free_workers(&self) -> usize {
        self.workers.free_count()
    }

    /// Workers currently quarantined (busy far past their type's profiled
    /// mean; excluded from the free pool until their completion arrives).
    pub fn quarantined_workers(&self) -> usize {
        self.workers.quarantined_count()
    }

    /// Whether `worker` is currently quarantined.
    pub fn is_quarantined(&self, worker: WorkerId) -> bool {
        self.workers.is_quarantined(worker.index())
    }

    /// Quarantine events since start (cumulative).
    pub fn quarantines(&self) -> u64 {
        self.workers.quarantines()
    }

    /// Quarantine releases (late completions) since start.
    pub fn releases(&self) -> u64 {
        self.workers.releases()
    }

    /// Requests expired by deadline shedding or drained at teardown.
    pub fn expired_total(&self) -> u64 {
        self.expired_total
    }

    /// Whether every worker is either idle or quarantined — the engine's
    /// quiescence condition for shutdown. A quarantined worker may never
    /// answer; waiting on it would wedge teardown, which is exactly the
    /// failure mode this subsystem removes.
    pub fn quiescent(&self) -> bool {
        self.workers.quiescent()
    }

    /// Queued requests of type `ty` (UNKNOWN supported).
    pub fn pending(&self, ty: TypeId) -> usize {
        if ty.is_unknown() {
            self.unknown.len()
        } else {
            self.queues.get(ty.index()).map(|q| q.len()).unwrap_or(0)
        }
    }

    /// Total queued requests across all types.
    pub fn total_pending(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum::<usize>() + self.unknown.len()
    }

    /// Requests dropped by flow control for type `ty`.
    pub fn drops(&self, ty: TypeId) -> u64 {
        if ty.is_unknown() {
            self.unknown.drops()
        } else {
            self.queues.get(ty.index()).map(|q| q.drops()).unwrap_or(0)
        }
    }

    /// Total drops across all typed queues.
    pub fn total_drops(&self) -> u64 {
        self.queues.iter().map(|q| q.drops()).sum::<u64>() + self.unknown.drops()
    }

    /// Current capacity of `ty`'s queue (`0` = unbounded; UNKNOWN maps to
    /// the unknown queue). SLO-sized queues change this on every install.
    pub fn queue_capacity_of(&self, ty: TypeId) -> usize {
        if ty.is_unknown() {
            self.unknown.capacity()
        } else {
            self.queues
                .get(ty.index())
                .map(|q| q.capacity())
                .unwrap_or(self.unknown.capacity())
        }
    }

    /// Number of workers currently *guaranteed* (reserved) for `ty`'s
    /// group — the quantity plotted in the paper's Figure 7 bottom row.
    pub fn guaranteed_workers(&self, ty: TypeId) -> usize {
        match self.reservation.group_of(ty) {
            Some(g) => self.reservation.groups[g].reserved.len(),
            None => 0,
        }
    }

    /// Resizes the worker pool (paper §6: "DARC can cooperate with an
    /// allocator to obtain and release cores, adapting to load changes and
    /// updating reservations during such events").
    ///
    /// Growing takes effect immediately; shrinking requires the workers
    /// being surrendered (the highest-indexed ones) to be idle — the
    /// caller drains them first. A dynamic engine recomputes its
    /// reservation for the new width right away; a frozen or c-FCFS
    /// engine keeps its policy but gains/loses the raw cores.
    ///
    /// Returns `Err(())` without changes when shrinking would drop a busy
    /// worker or `new_workers` is zero. Reconfiguration lane, never per
    /// request — cold marks the audit frontier.
    #[allow(clippy::result_unit_err)]
    #[cold]
    pub fn resize(&mut self, new_workers: usize) -> Result<(), ()> {
        self.workers.resize(new_workers)?;
        self.reserve_cfg.num_workers = new_workers;
        match self.phase {
            Phase::Darc => {
                // Reserve from the current estimates for the new width.
                let stats = self.profiler.estimates();
                let res = reserve(&stats, &self.reserve_cfg);
                self.install(res);
            }
            Phase::Warmup => {
                self.reservation = Reservation::all_shared(self.num_types, new_workers);
            }
            Phase::Frozen => {
                // A manual reservation cannot be rescaled meaningfully;
                // rebuild the shared layout and let the caller install a
                // new static reservation if desired.
                self.reservation = Reservation::all_shared(self.num_types, new_workers);
                self.priority = self.reservation.priority_order().collect();
                self.spill_types.clear();
            }
        }
        Ok(())
    }

    /// Enqueues a classified request; returns it back when the typed queue
    /// is full (the caller should count/drop it).
    ///
    /// Types out of the registered range are treated as UNKNOWN.
    pub fn enqueue(&mut self, ty: TypeId, req: R, now: Nanos) -> Result<(), R> {
        // Occurrence ratios are profiled at *arrival*: completion-based
        // ratios are biased low for a type whose queue is backed up, which
        // would make an under-provisioned allocation look self-consistent.
        self.profiler.record_arrival(ty);
        let seq = self.seq;
        self.seq += 1;
        let tslot = self.tslot(ty);
        let slot = if !ty.is_unknown() && ty.index() < self.queues.len() {
            &mut self.queues[ty.index()]
        } else {
            &mut self.unknown
        };
        let depth_if_full = slot.len() as u64;
        let result = slot.push(req, now, seq);
        if let Some(t) = &self.telemetry {
            t.record_arrival(tslot);
            match &result {
                Ok(()) => t.record_queue_depth(tslot, depth_if_full + 1),
                Err(_) => t.record_drop(tslot, depth_if_full, now.as_nanos()),
            }
        }
        result
    }

    /// Returns the next dispatch decision, or `None` when no request can
    /// be placed (no pending work, or no eligible free worker).
    ///
    /// Call in a loop after every enqueue/complete until it returns `None`.
    pub fn poll(&mut self, now: Nanos) -> Option<Dispatch<R>> {
        match self.phase {
            // `poll_fcfs` starts with its own `first_free` probe, so a
            // separate free-count load here would be pure overhead.
            Phase::Warmup => self.poll_fcfs(now),
            Phase::Darc | Phase::Frozen => {
                if self.workers.free_count() == 0 {
                    return None;
                }
                self.poll_darc(now)
            }
        }
    }

    /// Signals that `worker` finished its request, observed to run for
    /// `service`. Frees the worker, feeds the profiler, and (in dynamic
    /// mode) installs a new reservation when the update triggers fire.
    ///
    /// # Panics
    ///
    /// Panics if `worker` was not busy — that is a dispatcher/worker
    /// protocol violation, not a recoverable condition.
    pub fn complete(&mut self, worker: WorkerId, service: Nanos, now: Nanos) {
        let (ty, queued_for, started, released) = self.workers.complete(worker);
        if released {
            if let Some(t) = &self.telemetry {
                t.record_release(
                    worker.index(),
                    now.saturating_sub(started).as_nanos(),
                    now.as_nanos(),
                );
            }
        }
        self.profiler.record_completion(ty, service);
        if let Some(t) = &self.telemetry {
            let sojourn = queued_for.saturating_add(service);
            t.record_completion(
                self.tslot(ty),
                worker.index(),
                sojourn.as_nanos(),
                service.as_nanos(),
            );
        }
        self.maybe_update(now);
    }

    /// Deadline shedding: expires head-of-queue requests whose queueing
    /// delay exceeds `deadline_slowdown ×` the type's profiled mean
    /// service time. Expired requests move to an internal buffer the
    /// caller empties via [`DarcEngine::take_expired`] (the runtime
    /// answers each one with `Status::Dropped` so clients fail fast
    /// instead of inflating the tail).
    ///
    /// Call once per dispatcher iteration. No-op unless
    /// `overload.deadline_slowdown` is set; types without a service
    /// estimate (and the UNKNOWN queue) are never expired.
    pub fn expire_heads(&mut self, now: Nanos) {
        let Some(slowdown) = self.overload.deadline_slowdown else {
            return;
        };
        for i in 0..self.num_types {
            let ty = TypeId::new(i as u32);
            let Some(est) = self.profiler.estimate_ns(ty) else {
                continue;
            };
            let deadline = Nanos::from_nanos((slowdown * est) as u64);
            while let Some(entry) = self.queues[i].pop_expired(now, deadline) {
                let waited = now.saturating_sub(entry.enqueued);
                self.expired_total += 1;
                if let Some(t) = &self.telemetry {
                    t.record_expired(i, waited.as_nanos(), now.as_nanos());
                }
                self.expired_buf.push_back((ty, entry.req));
            }
        }
    }

    /// Takes the next deadline-expired request, if any.
    pub fn take_expired(&mut self) -> Option<(TypeId, R)> {
        self.expired_buf.pop_front()
    }

    /// Worker-health check: quarantines any busy worker whose in-flight
    /// request has run for `stall_factor ×` its type's profiled mean
    /// (floored at `min_stall`; types without an estimate use `min_stall`
    /// alone). A quarantined worker stays busy — its reserved core becomes
    /// re-coverable via the spillway in [`DarcEngine::poll`] — and is
    /// released by its late completion.
    ///
    /// Call once per dispatcher iteration. No-op unless
    /// `overload.stall_factor` is set.
    pub fn check_health(&mut self, now: Nanos) {
        let Some(factor) = self.overload.stall_factor else {
            return;
        };
        let profiler = &self.profiler;
        let telemetry = &self.telemetry;
        let num_types = self.num_types;
        self.workers.check_health(
            now,
            factor,
            self.overload.min_stall,
            |ty| profiler.estimate_ns(ty),
            |w, ty, running| {
                if let Some(t) = telemetry {
                    t.record_quarantine(
                        w,
                        tslot(ty, num_types),
                        running.as_nanos(),
                        now.as_nanos(),
                    );
                }
            },
        );
    }

    /// Drains every typed queue (shutdown teardown), counting each entry
    /// as shed and appending all of them to `out` so the caller can
    /// answer each with `Dropped` instead of silently discarding queued
    /// work. Entries stream straight from the queues into the caller's
    /// (reusable) buffer — no intermediate collect.
    pub fn drain_all(&mut self, now: Nanos, out: &mut Vec<(TypeId, R)>) {
        let before = out.len();
        for i in 0..self.num_types {
            let ty = TypeId::new(i as u32);
            for e in self.queues[i].drain() {
                let waited = now.saturating_sub(e.enqueued);
                if let Some(t) = &self.telemetry {
                    t.record_expired(i, waited.as_nanos(), now.as_nanos());
                }
                out.push((ty, e.req));
            }
        }
        for e in self.unknown.drain() {
            let waited = now.saturating_sub(e.enqueued);
            if let Some(t) = &self.telemetry {
                t.record_expired(self.num_types, waited.as_nanos(), now.as_nanos());
            }
            out.push((TypeId::UNKNOWN, e.req));
        }
        self.expired_total += (out.len() - before) as u64;
    }

    /// Forces a reservation recomputation from the current window (used by
    /// tests and by operators; normal updates happen inside `complete`).
    pub fn force_update(&mut self) {
        if matches!(self.phase, Phase::Darc | Phase::Warmup) {
            self.commit_and_install(Nanos::ZERO);
            self.phase = Phase::Darc;
        }
    }

    fn maybe_update(&mut self, now: Nanos) {
        match self.phase {
            Phase::Warmup => {
                if self.profiler.window_full() {
                    self.commit_and_install(now);
                    self.phase = Phase::Darc;
                }
            }
            Phase::Darc => {
                // Paper §4.3.3: update when the window is full, some
                // request saw SLO-violating queueing delay, and the CPU
                // demand deviates from the *current allocation* — either
                // the demand vector moved, or rounding the live demand
                // would grant different core counts than installed.
                if self.profiler.window_full()
                    && self.profiler.delay_signalled()
                    && (self.profiler.demand_deviated() || self.allocation_stale())
                {
                    self.commit_and_install(now);
                }
            }
            Phase::Frozen => {}
        }
    }

    /// Whether recomputing Algorithm 2 on the live window would grant any
    /// group a different number of reserved cores than it currently holds,
    /// or an ungrouped (previously vanished) type now carries real demand.
    fn allocation_stale(&mut self) -> bool {
        self.profiler.demands_into(&mut self.demand_scratch);
        let demands = &self.demand_scratch;
        let w = self.workers.len() as f64;
        for g in &self.reservation.groups {
            let d: f64 = g
                .types
                .iter()
                .filter(|t| t.index() < demands.len())
                .map(|t| demands[t.index()])
                .sum();
            let want = ((d * w).round() as usize).max(1);
            if want != g.reserved.len() {
                return true;
            }
        }
        demands.iter().enumerate().any(|(i, d)| {
            self.reservation.group_of(TypeId::new(i as u32)).is_none() && *d * w >= 0.5
        })
    }

    /// Reservation updates are the sanctioned slow lane (paper §4.3.3:
    /// rare, ~μs-scale): Algorithm 2 plus queue re-sizing may allocate.
    /// `#[cold]` keeps them off the audited hot path.
    #[cold]
    fn commit_and_install(&mut self, now: Nanos) {
        let stats = self.profiler.commit_window();
        let res = reserve(&stats, &self.reserve_cfg);
        self.install_at(res, now);
    }

    #[cold]
    fn install(&mut self, res: Reservation) {
        self.install_at(res, Nanos::ZERO);
    }

    #[cold]
    fn install_at(&mut self, res: Reservation, now: Nanos) {
        // Capture the outgoing guaranteed-core map and the demand shift
        // before the new reservation replaces them.
        let old_guaranteed: Vec<usize> = (0..self.num_types)
            .map(|i| self.guaranteed_workers(TypeId::new(i as u32)))
            .collect();
        let demands = self.profiler.demands();
        let trigger_delta = demands
            .iter()
            .zip(self.last_demands.iter())
            .map(|(d, last)| (d - last).abs())
            .fold(0.0f64, f64::max);
        self.last_demands = demands;

        self.priority = res.priority_order().collect();
        let mut grouped = vec![false; self.num_types];
        for t in &self.priority {
            if t.index() < grouped.len() {
                grouped[t.index()] = true;
            }
        }
        self.spill_types = (0..self.num_types)
            .map(|i| TypeId::new(i as u32))
            .filter(|t| !grouped[t.index()])
            .collect();
        self.reservation = res;
        self.updates += 1;

        // SLO-sized typed queues: with `g` guaranteed cores, a backlog of
        // `N` requests of mean service `S` drains in `N·S/g`; bounding that
        // by the slowdown SLO (`≤ slowdown·S`) gives `N ≤ slowdown·g` — the
        // estimate cancels out, so the capacity is independent of how fast
        // the type is, but gated on an estimate existing at all.
        if let Some(bounds) = self.overload.slo_queues {
            let slo = self.profiler.config().slowdown_slo;
            for (i, q) in self.queues.iter_mut().enumerate() {
                let ty = TypeId::new(i as u32);
                let g = match self.reservation.group_of(ty) {
                    Some(gi) => self.reservation.groups[gi].reserved.len(),
                    None => 0,
                };
                let cap = if g > 0 && self.profiler.estimate_ns(ty).is_some() {
                    ((slo * g as f64).ceil() as usize).clamp(bounds.min, bounds.max)
                } else {
                    bounds.min
                };
                q.set_capacity(cap);
            }
        }

        if let Some(t) = &self.telemetry {
            let new_guaranteed: Vec<usize> = (0..self.num_types)
                .map(|i| self.guaranteed_workers(TypeId::new(i as u32)))
                .collect();
            t.record_reservation_update(
                now.as_nanos(),
                self.updates,
                (trigger_delta * 1e6) as u64,
                &old_guaranteed,
                &new_guaranteed,
            );
        }
    }

    /// Centralized FCFS: dispatch the globally oldest pending request to
    /// any free worker.
    ///
    /// The queue walk is a branch-light min-fold over head sequence
    /// numbers: empty queues report `u64::MAX` via
    /// [`TypedQueue::head_seq`] and lose every comparison, so the loop
    /// body carries no emptiness branch and sequence numbers are unique,
    /// so no tiebreak is needed.
    fn poll_fcfs(&mut self, now: Nanos) -> Option<Dispatch<R>> {
        let worker = self.workers.first_free()?;
        let mut best_seq = self.unknown.head_seq();
        let mut best_qi = self.num_types; // num_types = the UNKNOWN queue
        for (i, q) in self.queues.iter().enumerate() {
            let seq = q.head_seq();
            if seq < best_seq {
                best_seq = seq;
                best_qi = i;
            }
        }
        if best_seq == u64::MAX {
            return None;
        }
        let (ty, entry) = if best_qi == self.num_types {
            (TypeId::UNKNOWN, self.unknown.pop()?)
        } else {
            (TypeId::new(best_qi as u32), self.queues[best_qi].pop()?)
        };
        Some(self.assign(worker, ty, entry, now, DispatchKind::Fcfs))
    }

    /// Algorithm 1: walk grouped types in ascending service-time order,
    /// then spillway-only types, dispatching heads onto free reserved or
    /// stealable workers.
    fn poll_darc(&mut self, now: Nanos) -> Option<Dispatch<R>> {
        for pi in 0..self.priority.len() {
            let ty = self.priority[pi];
            if self.queues[ty.index()].is_empty() {
                continue;
            }
            let gi = match self.reservation.group_of(ty) {
                Some(g) => g,
                None => continue,
            };
            if let Some((worker, kind)) = self.free_in_group(gi) {
                if let Some(entry) = self.queues[ty.index()].pop() {
                    return Some(self.assign(worker, ty, entry, now, kind));
                }
                continue;
            }
            // Graceful degradation: when every core reserved for this group
            // is quarantined (stalled mid-request), the spillway re-covers
            // the group so its types keep flowing instead of wedging.
            if self.group_reserved_all_quarantined(gi) {
                if let Some(worker) = self.free_spillway() {
                    if let Some(entry) = self.queues[ty.index()].pop() {
                        return Some(self.assign(worker, ty, entry, now, DispatchKind::Spillway));
                    }
                }
            }
        }
        // Ungrouped types and UNKNOWN run on spillway cores, lowest priority.
        for si in 0..self.spill_types.len() {
            let ty = self.spill_types[si];
            if self.queues[ty.index()].is_empty() {
                continue;
            }
            if let Some(worker) = self.free_spillway() {
                if let Some(entry) = self.queues[ty.index()].pop() {
                    return Some(self.assign(worker, ty, entry, now, DispatchKind::Spillway));
                }
            }
        }
        if !self.unknown.is_empty() {
            if let Some(worker) = self.free_spillway() {
                if let Some(entry) = self.unknown.pop() {
                    return Some(self.assign(
                        worker,
                        TypeId::UNKNOWN,
                        entry,
                        now,
                        DispatchKind::Spillway,
                    ));
                }
            }
        }
        None
    }

    /// A free worker serving group `gi`: first the group's own reserved
    /// cores, then stealable cores borrowed from longer groups. The
    /// lists are ascending and short (they partition the worker pool),
    /// and the walk is a branch-predictable byte scan over `free[..]`.
    #[inline]
    fn free_in_group(&self, gi: usize) -> Option<(WorkerId, DispatchKind)> {
        let g = &self.reservation.groups[gi];
        if let Some(w) = self.workers.first_free_in(&g.reserved) {
            return Some((w, DispatchKind::Reserved));
        }
        self.workers
            .first_free_in(&g.stealable)
            .map(|w| (w, DispatchKind::Stolen))
    }

    /// Whether group `gi` has reserved cores and every one is quarantined.
    fn group_reserved_all_quarantined(&self, gi: usize) -> bool {
        let g = &self.reservation.groups[gi];
        !g.reserved.is_empty()
            && g.reserved
                .iter()
                .all(|w| self.workers.is_quarantined(w.index()))
    }

    #[inline]
    fn free_spillway(&self) -> Option<WorkerId> {
        self.workers.first_free_in(&self.reservation.spillway)
    }

    fn assign(
        &mut self,
        worker: WorkerId,
        ty: TypeId,
        entry: crate::queue::Entry<R>,
        now: Nanos,
        kind: DispatchKind,
    ) -> Dispatch<R> {
        let queued_for = now.saturating_sub(entry.enqueued);
        self.workers.assign(worker, ty, queued_for, now);
        self.profiler.record_dispatch_delay(ty, queued_for);
        if let Some(t) = &self.telemetry {
            t.record_dispatch(self.tslot(ty), worker.index(), kind, now.as_nanos());
        }
        Dispatch {
            worker,
            ty,
            req: entry.req,
            queued_for,
            kind,
        }
    }
}

impl<R: Send> ScheduleEngine<R> for DarcEngine<R> {
    fn policy_name(&self) -> &'static str {
        "DARC"
    }

    fn num_workers(&self) -> usize {
        DarcEngine::num_workers(self)
    }

    fn num_types(&self) -> usize {
        DarcEngine::num_types(self)
    }

    fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        DarcEngine::set_telemetry(self, telemetry)
    }

    fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        DarcEngine::telemetry(self)
    }

    fn enqueue(&mut self, ty: TypeId, req: R, now: Nanos) -> Result<(), R> {
        DarcEngine::enqueue(self, ty, req, now)
    }

    fn poll(&mut self, now: Nanos) -> Option<Dispatch<R>> {
        DarcEngine::poll(self, now)
    }

    fn complete(&mut self, worker: WorkerId, service: Nanos, now: Nanos) {
        DarcEngine::complete(self, worker, service, now)
    }

    fn expire_heads(&mut self, now: Nanos) {
        DarcEngine::expire_heads(self, now)
    }

    fn take_expired(&mut self) -> Option<(TypeId, R)> {
        DarcEngine::take_expired(self)
    }

    fn check_health(&mut self, now: Nanos) {
        DarcEngine::check_health(self, now)
    }

    fn is_quarantined(&self, worker: WorkerId) -> bool {
        DarcEngine::is_quarantined(self, worker)
    }

    fn drain_all(&mut self, now: Nanos, out: &mut Vec<(TypeId, R)>) {
        DarcEngine::drain_all(self, now, out)
    }

    fn quiescent(&self) -> bool {
        DarcEngine::quiescent(self)
    }

    fn free_workers(&self) -> usize {
        DarcEngine::free_workers(self)
    }

    fn pending(&self, ty: TypeId) -> usize {
        DarcEngine::pending(self, ty)
    }

    fn total_pending(&self) -> usize {
        DarcEngine::total_pending(self)
    }

    fn drops(&self, ty: TypeId) -> u64 {
        DarcEngine::drops(self, ty)
    }

    fn total_drops(&self) -> u64 {
        DarcEngine::total_drops(self)
    }

    fn report(&self) -> EngineReport {
        EngineReport {
            policy: "DARC",
            updates: self.updates,
            quarantines: self.workers.quarantines(),
            releases: self.workers.releases(),
            expired: self.expired_total,
            guaranteed: (0..self.num_types)
                .map(|i| self.guaranteed_workers(TypeId::new(i as u32)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{ReserveTuning, SloQueueBounds};
    use super::*;

    fn micros(n: u64) -> Nanos {
        Nanos::from_micros(n)
    }

    fn hinted_engine(workers: usize) -> DarcEngine<u32> {
        // Type 0: short 1 µs at 50 %; type 1: long 100 µs at 50 %.
        let cfg = EngineConfig::darc(workers);
        DarcEngine::new(cfg, 2, &[Some(micros(1)), Some(micros(100))])
    }

    #[test]
    fn hinted_dynamic_engine_skips_warmup() {
        let eng = hinted_engine(4);
        assert!(!eng.in_warmup());
        assert_eq!(eng.reservation().groups.len(), 2);
    }

    #[test]
    fn dispatches_short_before_long() {
        let mut eng = hinted_engine(2);
        // Hint ratios are unknown at boot (commit with zero samples keeps
        // ratio 0), so re-profile: feed one window of traffic.
        let now = micros(0);
        eng.enqueue(TypeId::new(1), 100, now).unwrap();
        eng.enqueue(TypeId::new(0), 1, now).unwrap();
        // Short type (priority order) must dispatch first even though the
        // long request arrived earlier.
        let d = eng.poll(now).unwrap();
        assert_eq!(d.ty, TypeId::new(0));
        let d2 = eng.poll(now).unwrap();
        assert_eq!(d2.ty, TypeId::new(1));
        assert!(eng.poll(now).is_none(), "both workers busy");
    }

    #[test]
    fn short_steals_long_workers_but_not_vice_versa() {
        let mut eng = hinted_engine(4);
        let now = micros(0);
        // Reservation: short gets ≥1 reserved worker; long gets the rest.
        let short_reserved = eng.reservation().groups[0].reserved.len();
        assert!(short_reserved >= 1);
        // Fill the system with shorts: they may occupy every worker.
        for i in 0..4 {
            eng.enqueue(TypeId::new(0), i, now).unwrap();
        }
        let mut count = 0;
        while eng.poll(now).is_some() {
            count += 1;
        }
        assert_eq!(count, 4, "shorts can run on all workers via stealing");

        // Drain, then fill with longs: they must not take short workers.
        let mut eng = hinted_engine(4);
        for i in 0..4 {
            eng.enqueue(TypeId::new(1), i, now).unwrap();
        }
        let mut long_dispatched = 0;
        while eng.poll(now).is_some() {
            long_dispatched += 1;
        }
        let long_workers = eng.reservation().groups[1].reserved.len();
        assert_eq!(
            long_dispatched, long_workers,
            "longs are capped at their reserved workers"
        );
        assert!(long_dispatched < 4);
    }

    #[test]
    fn warmup_fcfs_respects_global_arrival_order() {
        // An unhinted dynamic engine starts in the c-FCFS warm-up phase.
        let mut eng: DarcEngine<u32> = DarcEngine::new(EngineConfig::darc(1), 2, &[None, None]);
        assert!(eng.in_warmup());
        let now = micros(0);
        eng.enqueue(TypeId::new(1), 10, now).unwrap();
        eng.enqueue(TypeId::new(0), 20, now).unwrap();
        let d = eng.poll(now).unwrap();
        assert_eq!(d.req, 10, "c-FCFS must take the earliest arrival");
        eng.complete(d.worker, micros(1), micros(2));
        let d2 = eng.poll(micros(2)).unwrap();
        assert_eq!(d2.req, 20);
    }

    #[test]
    fn unknown_requests_run_on_spillway_in_fcfs_and_darc() {
        let mut eng = hinted_engine(2);
        let now = micros(0);
        eng.enqueue(TypeId::UNKNOWN, 99, now).unwrap();
        let d = eng.poll(now).unwrap();
        assert_eq!(d.ty, TypeId::UNKNOWN);
        assert!(eng.reservation().spillway.contains(&d.worker));
    }

    #[test]
    fn unknown_loses_to_typed_work() {
        let mut eng = hinted_engine(2);
        let now = micros(0);
        eng.enqueue(TypeId::UNKNOWN, 99, now).unwrap();
        eng.enqueue(TypeId::new(0), 1, now).unwrap();
        let d = eng.poll(now).unwrap();
        assert_eq!(d.ty, TypeId::new(0), "typed work beats UNKNOWN");
    }

    #[test]
    fn warmup_transitions_to_darc_after_first_window() {
        let mut cfg = EngineConfig::darc(2);
        cfg.profiler.min_samples = 4;
        let mut eng: DarcEngine<u32> = DarcEngine::new(cfg, 2, &[None, None]);
        assert!(eng.in_warmup());
        let mut now = Nanos::ZERO;
        for i in 0..4 {
            let ty = TypeId::new(i % 2);
            eng.enqueue(ty, i, now).unwrap();
            let d = eng.poll(now).unwrap();
            let service = if d.ty == TypeId::new(0) {
                micros(1)
            } else {
                micros(100)
            };
            now += service;
            eng.complete(d.worker, service, now);
        }
        assert!(!eng.in_warmup(), "4 samples fill the window");
        assert_eq!(eng.reservation().groups.len(), 2);
        assert_eq!(eng.updates(), 1);
    }

    #[test]
    fn completion_frees_the_worker() {
        let mut eng = hinted_engine(1);
        let now = micros(0);
        eng.enqueue(TypeId::new(0), 1, now).unwrap();
        let d = eng.poll(now).unwrap();
        assert_eq!(eng.free_workers(), 0);
        assert!(eng.poll(now).is_none());
        eng.complete(d.worker, micros(1), micros(1));
        assert_eq!(eng.free_workers(), 1);
    }

    #[test]
    #[should_panic(expected = "completion from an idle worker")]
    fn double_completion_panics() {
        let mut eng = hinted_engine(1);
        eng.enqueue(TypeId::new(0), 1, Nanos::ZERO).unwrap();
        let d = eng.poll(Nanos::ZERO).unwrap();
        eng.complete(d.worker, micros(1), micros(1));
        eng.complete(d.worker, micros(1), micros(1));
    }

    #[test]
    fn flow_control_drops_only_overloaded_type() {
        let mut cfg = EngineConfig::darc(1);
        cfg.queue_capacity = 2;
        let mut eng: DarcEngine<u32> =
            DarcEngine::new(cfg, 2, &[Some(micros(1)), Some(micros(100))]);
        let now = micros(0);
        for i in 0..5 {
            let _ = eng.enqueue(TypeId::new(1), i, now);
        }
        assert_eq!(eng.drops(TypeId::new(1)), 3);
        assert_eq!(eng.pending(TypeId::new(1)), 2);
        // The other type is unaffected.
        assert!(eng.enqueue(TypeId::new(0), 9, now).is_ok());
        assert_eq!(eng.drops(TypeId::new(0)), 0);
        assert_eq!(eng.total_drops(), 3);
    }

    #[test]
    fn out_of_range_type_is_treated_as_unknown() {
        let mut eng = hinted_engine(2);
        eng.enqueue(TypeId::new(17), 5, Nanos::ZERO).unwrap();
        assert_eq!(eng.pending(TypeId::UNKNOWN), 1);
    }

    #[test]
    fn static_mode_never_updates() {
        let res = Reservation::two_class_static(2, 4, TypeId::new(0), 1);
        let cfg = EngineConfig {
            mode: EngineMode::Static(res),
            ..EngineConfig::darc(4)
        };
        let mut eng: DarcEngine<u32> = DarcEngine::new(cfg, 2, &[None, None]);
        let updates_at_boot = eng.updates();
        let mut now = Nanos::ZERO;
        for i in 0..100_000 {
            eng.enqueue(TypeId::new(i % 2), i, now).unwrap();
            let d = eng.poll(now).unwrap();
            now += micros(1);
            eng.complete(d.worker, micros(1), now);
        }
        assert_eq!(eng.updates(), updates_at_boot);
    }

    #[test]
    fn guaranteed_workers_reports_reserved_count() {
        let eng = hinted_engine(14);
        // Hinted boot assumes uniform ratios: High Bimodal hints on 14
        // workers give the short type 1 guaranteed core (paper §5.2).
        assert_eq!(eng.guaranteed_workers(TypeId::new(0)), 1);
        assert_eq!(eng.guaranteed_workers(TypeId::new(1)), 13);
        assert_eq!(eng.guaranteed_workers(TypeId::UNKNOWN), 0);
    }

    #[test]
    fn reserve_worker_count_is_derived_from_engine_config() {
        // The worker count lives once in EngineConfig: whatever the
        // reservation tuning says, the engine reserves over num_workers.
        let mut cfg = EngineConfig::darc(6);
        cfg.reserve = ReserveTuning::default().with_delta(1.5).with_spillway(2);
        let hints = [Some(Nanos::from_micros(1)), Some(Nanos::from_micros(100))];
        let eng: DarcEngine<u64> = DarcEngine::new(cfg, 2, &hints);
        assert_eq!(eng.reservation().num_workers, 6);
        assert_eq!(eng.reservation().spillway.len(), 2);
        // An absurd spillway request is clamped, not asserted on.
        let mut cfg = EngineConfig::darc(2);
        cfg.reserve = ReserveTuning::default().with_spillway(99);
        let eng: DarcEngine<u64> = DarcEngine::new(cfg, 2, &hints);
        assert_eq!(eng.reservation().num_workers, 2);
    }

    #[test]
    fn resize_grows_and_rereserves() {
        let mut eng = hinted_engine(4);
        assert_eq!(eng.guaranteed_workers(TypeId::new(1)), 3);
        eng.resize(14).unwrap();
        assert_eq!(eng.num_workers(), 14);
        assert_eq!(eng.free_workers(), 14);
        // High Bimodal hints on 14 workers: shorts 1, longs 13 (§5.2).
        assert_eq!(eng.guaranteed_workers(TypeId::new(0)), 1);
        assert_eq!(eng.guaranteed_workers(TypeId::new(1)), 13);
        // Work still flows after the resize.
        eng.enqueue(TypeId::new(0), 1, Nanos::ZERO).unwrap();
        let d = eng.poll(Nanos::ZERO).unwrap();
        eng.complete(d.worker, micros(1), micros(1));
    }

    #[test]
    fn resize_shrink_requires_idle_surrendered_workers() {
        let mut eng = hinted_engine(4);
        // Occupy the highest-indexed worker with a long request.
        for i in 0..4 {
            eng.enqueue(TypeId::new(1), i, Nanos::ZERO).unwrap();
        }
        while eng.poll(Nanos::ZERO).is_some() {}
        let busy_high = (0..4).rev().find(|_| true).unwrap();
        let _ = busy_high;
        assert!(eng.resize(1).is_err(), "cannot drop busy workers");
        assert_eq!(eng.num_workers(), 4, "failed resize leaves state intact");
        assert!(eng.resize(0).is_err());
    }

    #[test]
    fn resize_shrink_of_idle_workers_succeeds() {
        let mut eng = hinted_engine(8);
        eng.resize(2).unwrap();
        assert_eq!(eng.num_workers(), 2);
        // Both types still schedulable on the smaller machine.
        eng.enqueue(TypeId::new(0), 1, Nanos::ZERO).unwrap();
        eng.enqueue(TypeId::new(1), 2, Nanos::ZERO).unwrap();
        assert!(eng.poll(Nanos::ZERO).is_some());
        assert!(eng.poll(Nanos::ZERO).is_some());
    }

    /// A mis-rounded allocation self-heals even when the measured demand
    /// vector barely moves: the allocation-staleness trigger fires.
    #[test]
    fn stale_allocation_self_heals() {
        // Boot with uniform-ratio hints: Extreme-Bimodal service times at
        // assumed 50/50 ratios give the short type 1 core on 14 workers.
        let mut cfg = EngineConfig::darc(14);
        cfg.profiler.min_samples = 2_000;
        let hints = [Some(Nanos::from_nanos(500)), Some(micros(500))];
        let mut eng: DarcEngine<u32> = DarcEngine::new(cfg, 2, &hints);
        assert_eq!(eng.guaranteed_workers(TypeId::new(0)), 1);
        let boot_updates = eng.updates();

        // Feed the *true* mix (99.5 % shorts): demand says 2 cores. The
        // shorts overflow their single core, raising the delay signal.
        // Ratio estimates are EWMA-smoothed across windows, so convergence
        // takes a few windows rather than one.
        let mut now = Nanos::ZERO;
        let mut i = 0u32;
        while eng.guaranteed_workers(TypeId::new(0)) != 2 && i < 800_000 {
            let ty = if i.is_multiple_of(200) {
                TypeId::new(1)
            } else {
                TypeId::new(0)
            };
            eng.enqueue(ty, i, now).unwrap();
            i += 1;
            // Drain in bursts of 64 so queues build up between drains.
            if i.is_multiple_of(64) {
                while let Some(d) = eng.poll(now) {
                    let service = if d.ty == TypeId::new(0) {
                        Nanos::from_nanos(500)
                    } else {
                        micros(500)
                    };
                    now += service;
                    eng.complete(d.worker, service, now);
                }
            }
        }
        assert!(
            eng.updates() > boot_updates,
            "stale 1-core allocation must be corrected"
        );
        assert_eq!(
            eng.guaranteed_workers(TypeId::new(0)),
            2,
            "true demand 0.166 x 14 = 2.3 cores"
        );
    }

    #[test]
    fn telemetry_hooks_record_engine_activity() {
        use persephone_telemetry::{SchedEvent, Telemetry, TelemetryConfig};
        let mut cfg = EngineConfig::darc(4);
        cfg.profiler.min_samples = 8;
        cfg.queue_capacity = 4;
        let mut eng: DarcEngine<u32> = DarcEngine::new(cfg, 2, &[None, None]);
        let tel = Arc::new(Telemetry::new(TelemetryConfig::new(2, 4)));
        eng.set_telemetry(tel.clone());

        let mut now = Nanos::ZERO;
        let mut enqueued = 0u64;
        let mut dropped = 0u64;
        for i in 0..400u32 {
            let ty = TypeId::new(i % 2);
            match eng.enqueue(ty, i, now) {
                Ok(()) => enqueued += 1,
                Err(_) => dropped += 1,
            }
            if i % 16 == 0 {
                while let Some(d) = eng.poll(now) {
                    let service = if d.ty == TypeId::new(0) {
                        micros(1)
                    } else {
                        micros(100)
                    };
                    now += service;
                    eng.complete(d.worker, service, now);
                }
            }
        }
        while eng.total_pending() > 0 {
            while let Some(d) = eng.poll(now) {
                now += micros(1);
                eng.complete(d.worker, micros(1), now);
            }
        }

        let snap = tel.snapshot();
        assert_eq!(snap.completions(), enqueued);
        let arrivals: u64 = snap.types.iter().map(|t| t.counters.arrivals).sum();
        assert_eq!(arrivals, enqueued + dropped);
        let drops: u64 = snap.types.iter().map(|t| t.counters.drops).sum();
        assert_eq!(drops, dropped);
        assert_eq!(drops, eng.total_drops());
        // Sojourn percentiles exist per type and include queueing: the
        // long type's p50 must be at least its 100 µs service time.
        assert!(snap.types[1].sojourn.quantile(0.5) >= 100_000);
        assert!(snap.types[0].sojourn.count() > 0);
        // Warm-up exit produced at least one reservation-update event
        // carrying the old→new guaranteed map.
        let update = snap.events.events.iter().find_map(|(_, e)| match e {
            SchedEvent::ReservationUpdate { new_guaranteed, .. } => Some(new_guaranteed),
            _ => None,
        });
        let new_map = update.expect("missing reservation-update event");
        assert_eq!(
            (new_map[0] as usize, new_map[1] as usize),
            (
                eng.guaranteed_workers(TypeId::new(0)),
                eng.guaranteed_workers(TypeId::new(1))
            )
        );
        // Queue-depth high-water marks were tracked.
        assert!(snap.types.iter().any(|t| t.counters.queue_depth_hwm > 0));
    }

    #[test]
    fn dispatch_kinds_distinguish_reserved_from_stolen() {
        let mut eng = hinted_engine(4);
        let now = micros(0);
        // Fill with shorts: first dispatch lands on the short group's
        // reserved core, later ones steal from the long group.
        for i in 0..4 {
            eng.enqueue(TypeId::new(0), i, now).unwrap();
        }
        let mut kinds = Vec::new();
        while let Some(d) = eng.poll(now) {
            kinds.push(d.kind);
        }
        assert_eq!(kinds[0], DispatchKind::Reserved);
        assert!(kinds.contains(&DispatchKind::Stolen));
        // UNKNOWN work arrives on the spillway.
        let mut eng = hinted_engine(2);
        eng.enqueue(TypeId::UNKNOWN, 9, now).unwrap();
        assert_eq!(eng.poll(now).unwrap().kind, DispatchKind::Spillway);
        // Warm-up c-FCFS reports the FCFS kind.
        let mut eng: DarcEngine<u32> = DarcEngine::new(EngineConfig::darc(1), 2, &[None, None]);
        eng.enqueue(TypeId::new(0), 1, now).unwrap();
        assert_eq!(eng.poll(now).unwrap().kind, DispatchKind::Fcfs);
    }

    #[test]
    fn deadline_shedding_expires_stale_heads() {
        let mut cfg = EngineConfig::darc(2);
        cfg.overload.deadline_slowdown = Some(10.0);
        let mut eng: DarcEngine<u32> =
            DarcEngine::new(cfg, 2, &[Some(micros(1)), Some(micros(100))]);
        eng.enqueue(TypeId::new(0), 1, micros(0)).unwrap();
        eng.enqueue(TypeId::new(0), 2, micros(5)).unwrap();
        eng.enqueue(TypeId::new(1), 3, micros(0)).unwrap();
        // Type 0's deadline is 10 × 1 µs. At t = 11 µs its head has waited
        // 11 µs (expired) and the next entry 6 µs (kept); type 1's 1 ms
        // deadline is nowhere near.
        eng.expire_heads(micros(11));
        assert_eq!(eng.take_expired(), Some((TypeId::new(0), 1)));
        assert_eq!(eng.take_expired(), None);
        assert_eq!(eng.expired_total(), 1);
        assert_eq!(eng.pending(TypeId::new(0)), 1);
        assert_eq!(eng.pending(TypeId::new(1)), 1);
        // Off by default: a plain engine never expires anything.
        let mut plain = hinted_engine(2);
        plain.enqueue(TypeId::new(0), 1, micros(0)).unwrap();
        plain.expire_heads(Nanos::from_secs(100));
        assert_eq!(plain.expired_total(), 0);
        assert_eq!(plain.pending(TypeId::new(0)), 1);
    }

    #[test]
    fn slo_sized_queues_track_reservation() {
        let mut cfg = EngineConfig::darc(14);
        cfg.overload.slo_queues = Some(SloQueueBounds { min: 2, max: 64 });
        let eng: DarcEngine<u32> = DarcEngine::new(cfg, 2, &[Some(micros(1)), Some(micros(100))]);
        // Hinted boot reserves 1 core for shorts and 13 for longs; with the
        // default slowdown SLO of 10 the capacities are 10×1 and 10×13,
        // the latter clamped to the configured max.
        assert_eq!(eng.queue_capacity_of(TypeId::new(0)), 10);
        assert_eq!(eng.queue_capacity_of(TypeId::new(1)), 64);
        // Off by default: queues keep the static (unbounded) capacity.
        let plain = hinted_engine(14);
        assert_eq!(plain.queue_capacity_of(TypeId::new(0)), 0);
    }

    #[test]
    fn stalled_worker_is_quarantined_and_released() {
        let mut cfg = EngineConfig::darc(2);
        cfg.overload.stall_factor = Some(5.0);
        cfg.overload.min_stall = micros(1);
        let mut eng: DarcEngine<u32> =
            DarcEngine::new(cfg, 2, &[Some(micros(1)), Some(micros(100))]);
        eng.enqueue(TypeId::new(0), 1, micros(0)).unwrap();
        let d = eng.poll(micros(0)).unwrap();
        assert!(
            !eng.quiescent(),
            "a busy non-quarantined pool is not quiescent"
        );
        // 4 µs in, the request is under the 5 × 1 µs threshold: healthy.
        eng.check_health(micros(4));
        assert_eq!(eng.quarantined_workers(), 0);
        // 6 µs in, it is past the threshold: quarantined.
        eng.check_health(micros(6));
        assert!(eng.is_quarantined(d.worker));
        assert_eq!(eng.quarantined_workers(), 1);
        assert_eq!(eng.quarantines(), 1);
        assert!(
            eng.quiescent(),
            "only the quarantined worker is busy: shutdown must not wait on it"
        );
        // Re-checking never double-counts.
        eng.check_health(micros(7));
        assert_eq!(eng.quarantines(), 1);
        // The worker stays excluded from dispatch while quarantined.
        assert_eq!(eng.free_workers(), 1);
        // Its late completion releases it back into the pool.
        eng.complete(d.worker, micros(8), micros(8));
        assert!(!eng.is_quarantined(d.worker));
        assert_eq!(eng.quarantined_workers(), 0);
        assert_eq!(eng.releases(), 1);
        assert_eq!(eng.free_workers(), 2);
        assert!(eng.quiescent());
    }

    #[test]
    fn quarantined_reserved_core_is_covered_by_spillway() {
        use crate::reserve::Group;
        // Hand-built strict partition: short on w0, long on w1, spillway
        // w2, no stealing anywhere — so only the quarantine fallback can
        // keep the short type flowing when w0 stalls.
        let res = Reservation::custom(
            vec![
                Group {
                    types: vec![TypeId::new(0)],
                    mean_service_ns: 1_000.0,
                    demand: 0.5,
                    reserved: vec![WorkerId::new(0)],
                    stealable: Vec::new(),
                },
                Group {
                    types: vec![TypeId::new(1)],
                    mean_service_ns: 100_000.0,
                    demand: 0.5,
                    reserved: vec![WorkerId::new(1)],
                    stealable: Vec::new(),
                },
            ],
            vec![WorkerId::new(2)],
            2,
            3,
        );
        let mut cfg = EngineConfig {
            mode: EngineMode::Static(res),
            ..EngineConfig::darc(3)
        };
        cfg.overload.stall_factor = Some(5.0);
        cfg.overload.min_stall = micros(1);
        let mut eng: DarcEngine<u32> =
            DarcEngine::new(cfg, 2, &[Some(micros(1)), Some(micros(100))]);
        // Dispatch a short onto its reserved core and stall it.
        eng.enqueue(TypeId::new(0), 1, micros(0)).unwrap();
        let d = eng.poll(micros(0)).unwrap();
        assert_eq!(d.worker, WorkerId::new(0));
        assert_eq!(d.kind, DispatchKind::Reserved);
        eng.check_health(micros(50));
        assert!(eng.is_quarantined(WorkerId::new(0)));
        // The next short cannot use w0 (quarantined) and has nothing to
        // steal; the spillway must absorb it.
        eng.enqueue(TypeId::new(0), 2, micros(50)).unwrap();
        let d2 = eng.poll(micros(50)).unwrap();
        assert_eq!(d2.worker, WorkerId::new(2));
        assert_eq!(d2.kind, DispatchKind::Spillway);
        // With the spillway busy too, nothing is schedulable for shorts.
        eng.enqueue(TypeId::new(0), 3, micros(50)).unwrap();
        assert!(eng.poll(micros(50)).is_none());
        // Longs are unaffected throughout.
        eng.enqueue(TypeId::new(1), 4, micros(50)).unwrap();
        assert_eq!(eng.poll(micros(50)).unwrap().worker, WorkerId::new(1));
    }

    #[test]
    fn drain_all_counts_and_returns_everything() {
        let mut eng = hinted_engine(2);
        eng.enqueue(TypeId::new(0), 1, micros(0)).unwrap();
        eng.enqueue(TypeId::new(1), 2, micros(0)).unwrap();
        eng.enqueue(TypeId::UNKNOWN, 3, micros(0)).unwrap();
        let mut drained = Vec::new();
        eng.drain_all(micros(5), &mut drained);
        assert_eq!(drained.len(), 3);
        assert!(drained.contains(&(TypeId::new(0), 1)));
        assert!(drained.contains(&(TypeId::UNKNOWN, 3)));
        assert_eq!(eng.expired_total(), 3);
        assert_eq!(eng.total_pending(), 0);
        assert_eq!(eng.total_drops(), 0, "shedding is not an admission drop");
    }

    #[test]
    fn reservation_update_after_demand_shift() {
        let mut cfg = EngineConfig::darc(4);
        cfg.profiler.min_samples = 100;
        let mut eng: DarcEngine<u32> = DarcEngine::new(cfg, 2, &[None, None]);
        let mut now = Nanos::ZERO;
        // Warm-up window: type 0 short, type 1 long.
        for i in 0..100 {
            let ty = TypeId::new(i % 2);
            eng.enqueue(ty, i, now).unwrap();
            let d = eng.poll(now).unwrap();
            let service = if d.ty == TypeId::new(0) {
                micros(1)
            } else {
                micros(100)
            };
            now += service;
            eng.complete(d.worker, service, now);
        }
        assert!(!eng.in_warmup());
        let g_short = eng.reservation().group_of(TypeId::new(0)).unwrap();
        assert_eq!(
            eng.reservation().groups[g_short].types,
            vec![TypeId::new(0)]
        );
        let updates_before = eng.updates();
        // Phase change: type 0 becomes the long one. Enqueue a burst so a
        // backlog builds: queueing delays pile up ⇒ delay signal; demand
        // flips ⇒ deviation; window fills ⇒ update.
        for i in 0..400u32 {
            let ty = TypeId::new(i % 2);
            eng.enqueue(ty, i, now).unwrap();
        }
        while let Some(d) = eng.poll(now) {
            let service = if d.ty == TypeId::new(0) {
                micros(100)
            } else {
                micros(1)
            };
            now += service;
            eng.complete(d.worker, service, now);
        }
        assert!(eng.updates() > updates_before, "reservation must adapt");
        assert_eq!(eng.total_pending(), 0, "the backlog must fully drain");
    }

    #[test]
    fn trait_report_matches_inherent_counters() {
        let mut eng = hinted_engine(4);
        let now = micros(0);
        eng.enqueue(TypeId::new(0), 1, now).unwrap();
        let d = eng.poll(now).unwrap();
        eng.complete(d.worker, micros(1), micros(1));
        let report = ScheduleEngine::report(&eng);
        assert_eq!(report.policy, "DARC");
        assert_eq!(report.updates, eng.updates());
        assert_eq!(
            report.guaranteed,
            vec![
                eng.guaranteed_workers(TypeId::new(0)),
                eng.guaranteed_workers(TypeId::new(1))
            ]
        );
    }
}
