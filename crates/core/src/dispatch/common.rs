//! Worker-pool bookkeeping shared by every [`super::ScheduleEngine`]
//! implementation: busy/free state, in-flight metadata, and the
//! quarantine machinery of the overload-control subsystem.

use crate::time::Nanos;
use crate::types::{TypeId, WorkerId};

/// Telemetry slot for `ty` (UNKNOWN and out-of-range types map to the
/// registry's overflow slot at index `num_types`).
#[inline]
pub(crate) fn tslot(ty: TypeId, num_types: usize) -> usize {
    if ty.is_unknown() {
        num_types
    } else {
        ty.index().min(num_types)
    }
}

/// Per-worker busy/free/quarantine accounting.
///
/// Every engine tracks the same three facts about a worker: whether it is
/// busy (and with what), whether it is quarantined, and the cumulative
/// quarantine/release counters. Keeping them in one struct means a new
/// policy cannot get the free-count arithmetic subtly wrong.
#[derive(Clone, Debug)]
pub(crate) struct WorkerTable {
    /// Per worker: the in-flight request's type, how long it queued (kept
    /// so `complete` can record the full sojourn), and when it was
    /// dispatched (so health checks can see how long it has been running).
    busy: Vec<Option<(TypeId, Nanos, Nanos)>>,
    free_count: usize,
    /// Per worker: whether its in-flight request ran so far past its
    /// type's profiled mean that the worker is presumed stalled.
    quarantined: Vec<bool>,
    quarantined_count: usize,
    quarantines_total: u64,
    releases_total: u64,
}

impl WorkerTable {
    pub fn new(num_workers: usize) -> Self {
        WorkerTable {
            busy: vec![None; num_workers],
            free_count: num_workers,
            quarantined: vec![false; num_workers],
            quarantined_count: 0,
            quarantines_total: 0,
            releases_total: 0,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.busy.len()
    }

    #[inline]
    pub fn free_count(&self) -> usize {
        self.free_count
    }

    #[inline]
    pub fn is_free(&self, worker: usize) -> bool {
        self.busy[worker].is_none()
    }

    /// The lowest-indexed free worker, if any.
    #[inline]
    pub fn first_free(&self) -> Option<WorkerId> {
        self.busy
            .iter()
            .position(|b| b.is_none())
            .map(|i| WorkerId::new(i as u32))
    }

    #[inline]
    pub fn quarantined_count(&self) -> usize {
        self.quarantined_count
    }

    #[inline]
    pub fn is_quarantined(&self, worker: usize) -> bool {
        self.quarantined.get(worker).copied().unwrap_or(false)
    }

    pub fn quarantines(&self) -> u64 {
        self.quarantines_total
    }

    pub fn releases(&self) -> u64 {
        self.releases_total
    }

    /// Whether every worker is either idle or quarantined (the shutdown
    /// quiescence condition: a stalled core must not wedge teardown).
    #[inline]
    pub fn quiescent(&self) -> bool {
        self.free_count + self.quarantined_count == self.busy.len()
    }

    /// Marks `worker` busy with a request of type `ty`.
    #[inline]
    pub fn assign(&mut self, worker: WorkerId, ty: TypeId, queued_for: Nanos, now: Nanos) {
        debug_assert!(self.busy[worker.index()].is_none());
        self.busy[worker.index()] = Some((ty, queued_for, now));
        self.free_count -= 1;
    }

    /// Frees `worker`, returning its in-flight metadata `(ty, queued_for,
    /// started, released_from_quarantine)`.
    ///
    /// # Panics
    ///
    /// Panics if `worker` was not busy — a dispatcher/worker protocol
    /// violation, not a recoverable condition.
    #[inline]
    pub fn complete(&mut self, worker: WorkerId) -> (TypeId, Nanos, Nanos, bool) {
        let slot = self
            .busy
            .get_mut(worker.index())
            .expect("worker id out of range");
        let (ty, queued_for, started) = slot.take().expect("completion from an idle worker");
        self.free_count += 1;
        let mut released = false;
        if self.quarantined[worker.index()] {
            // The presumed-stalled worker answered after all: release it
            // back into the free pool.
            self.quarantined[worker.index()] = false;
            self.quarantined_count -= 1;
            self.releases_total += 1;
            released = true;
        }
        (ty, queued_for, started, released)
    }

    /// Quarantines any busy worker whose in-flight request has run for
    /// `factor ×` its type's estimated mean (floored at `min_stall`; types
    /// without an estimate use `min_stall` alone). `on_quarantine(worker,
    /// ty, running)` fires once per new quarantine, for telemetry.
    pub fn check_health(
        &mut self,
        now: Nanos,
        factor: f64,
        min_stall: Nanos,
        estimate_ns: impl Fn(TypeId) -> Option<f64>,
        mut on_quarantine: impl FnMut(usize, TypeId, Nanos),
    ) {
        for w in 0..self.busy.len() {
            if self.quarantined[w] {
                continue;
            }
            let Some((ty, _queued_for, started)) = self.busy[w] else {
                continue;
            };
            let running = now.saturating_sub(started);
            let threshold = match estimate_ns(ty) {
                Some(est) => Nanos::from_nanos((factor * est) as u64).max(min_stall),
                None => min_stall,
            };
            if running > threshold {
                self.quarantined[w] = true;
                self.quarantined_count += 1;
                self.quarantines_total += 1;
                on_quarantine(w, ty, running);
            }
        }
    }

    /// Resizes the pool. Growing takes effect immediately; shrinking
    /// requires the surrendered (highest-indexed) workers to be idle.
    /// Returns `Err(())` without changes when shrinking would drop a busy
    /// worker or `new_workers` is zero.
    pub fn resize(&mut self, new_workers: usize) -> Result<(), ()> {
        if new_workers == 0 {
            return Err(());
        }
        let old = self.busy.len();
        if new_workers < old && self.busy[new_workers..].iter().any(|b| b.is_some()) {
            return Err(());
        }
        self.busy.resize(new_workers, None);
        self.quarantined.resize(new_workers, false);
        self.quarantined_count = self.quarantined.iter().filter(|q| **q).count();
        self.free_count = self.busy.iter().filter(|b| b.is_none()).count();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_complete_roundtrip_tracks_free_count() {
        let mut t = WorkerTable::new(2);
        assert_eq!(t.free_count(), 2);
        assert_eq!(t.first_free(), Some(WorkerId::new(0)));
        t.assign(WorkerId::new(0), TypeId::new(1), Nanos::ZERO, Nanos::ZERO);
        assert_eq!(t.free_count(), 1);
        assert_eq!(t.first_free(), Some(WorkerId::new(1)));
        assert!(!t.is_free(0));
        let (ty, _, _, released) = t.complete(WorkerId::new(0));
        assert_eq!(ty, TypeId::new(1));
        assert!(!released);
        assert_eq!(t.free_count(), 2);
        assert!(t.quiescent());
    }

    #[test]
    fn health_check_quarantines_and_release_counts() {
        let mut t = WorkerTable::new(1);
        t.assign(WorkerId::new(0), TypeId::new(0), Nanos::ZERO, Nanos::ZERO);
        let mut fired = 0;
        t.check_health(
            Nanos::from_micros(100),
            5.0,
            Nanos::from_micros(1),
            |_| Some(1_000.0),
            |_, _, _| fired += 1,
        );
        assert_eq!(fired, 1);
        assert!(t.is_quarantined(0));
        assert!(t.quiescent(), "quarantined workers do not block shutdown");
        // Re-checking never double-counts.
        t.check_health(
            Nanos::from_micros(101),
            5.0,
            Nanos::from_micros(1),
            |_| Some(1_000.0),
            |_, _, _| fired += 1,
        );
        assert_eq!(fired, 1);
        assert_eq!(t.quarantines(), 1);
        let (_, _, _, released) = t.complete(WorkerId::new(0));
        assert!(released);
        assert_eq!(t.releases(), 1);
        assert_eq!(t.quarantined_count(), 0);
    }

    #[test]
    fn resize_guards_busy_workers() {
        let mut t = WorkerTable::new(3);
        t.assign(WorkerId::new(2), TypeId::new(0), Nanos::ZERO, Nanos::ZERO);
        assert!(t.resize(2).is_err(), "cannot drop a busy worker");
        assert!(t.resize(0).is_err());
        let _ = t.complete(WorkerId::new(2));
        t.resize(2).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.free_count(), 2);
        t.resize(5).unwrap();
        assert_eq!(t.free_count(), 5);
    }
}
