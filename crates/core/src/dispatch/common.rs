//! Worker-pool bookkeeping shared by every [`super::ScheduleEngine`]
//! implementation: busy/free state, in-flight metadata, and the
//! quarantine machinery of the overload-control subsystem.

use crate::time::Nanos;
use crate::types::{TypeId, WorkerId};

/// Telemetry slot for `ty` (UNKNOWN and out-of-range types map to the
/// registry's overflow slot at index `num_types`).
#[inline]
pub(crate) fn tslot(ty: TypeId, num_types: usize) -> usize {
    if ty.is_unknown() {
        num_types
    } else {
        ty.index().min(num_types)
    }
}

/// Per-worker busy/free/quarantine accounting.
///
/// Every engine tracks the same three facts about a worker: whether it is
/// busy (and with what), whether it is quarantined, and the cumulative
/// quarantine/release counters. Keeping them in one struct means a new
/// policy cannot get the free-count arithmetic subtly wrong.
///
/// # Memory layout (hot/cold split)
///
/// The fields every dispatch touches sit first: `state` (one byte per
/// worker — up to 64 workers per cache line), the free count, and the
/// in-flight metadata. `busy_meta[w]` is *valid only while worker `w`
/// is busy*; the former `Vec<Option<..>>` interleaved a discriminant
/// with 24 bytes of metadata, so a free-worker scan dragged the whole
/// metadata array through cache. The quarantine counters are only
/// touched by the wall-clock health check and sit after the hot block.
///
/// `assign` and `complete` flip `state[w]` with plain byte stores — no
/// read-modify-write. An earlier revision packed the free set into
/// `u64` bitmask words with `trailing_zeros` selection; measured on the
/// dispatch cycle it was ~4 ns *slower* per iteration, because every
/// assign/complete became a load-modify-store on the same word and the
/// selected worker index became data-dependent on the just-stored mask
/// (`tzcnt`), serializing the loop the branch-predicted byte scan
/// overlaps. A second revision split free and quarantine flags into two
/// `Vec<bool>`s; folding them into one tri-state byte keeps the scan
/// identical and spares `complete` a third array access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
enum Slot {
    /// Running a request; `busy_meta` is valid.
    Busy = 0,
    /// Idle, eligible for selection.
    Free = 1,
    /// Busy, but the in-flight request ran so far past its type's
    /// profiled mean that the worker is presumed stalled.
    Quarantined = 2,
}

#[derive(Clone, Debug)]
pub(crate) struct WorkerTable {
    // --- hot: read/written on every assign / poll / complete ---
    num_workers: usize,
    free_count: usize,
    /// Per-worker tri-state, one byte each: selection scans are
    /// branch-predictable and state flips are pure stores.
    state: Vec<Slot>,
    /// Per worker: the in-flight request's type, how long it queued (kept
    /// so `complete` can record the full sojourn), and when it was
    /// dispatched (so health checks can see how long it has been running).
    /// Valid only while the worker is busy.
    busy_meta: Vec<(TypeId, Nanos, Nanos)>,
    // --- cold: touched only by the overload-control health check ---
    quarantined_count: usize,
    quarantines_total: u64,
    releases_total: u64,
}

impl WorkerTable {
    pub fn new(num_workers: usize) -> Self {
        WorkerTable {
            num_workers,
            free_count: num_workers,
            state: vec![Slot::Free; num_workers],
            busy_meta: vec![(TypeId::UNKNOWN, Nanos::ZERO, Nanos::ZERO); num_workers],
            quarantined_count: 0,
            quarantines_total: 0,
            releases_total: 0,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.num_workers
    }

    #[inline]
    pub fn free_count(&self) -> usize {
        self.free_count
    }

    #[inline]
    pub fn is_free(&self, worker: usize) -> bool {
        self.state[worker] == Slot::Free
    }

    /// The lowest-indexed free worker, if any.
    #[inline]
    pub fn first_free(&self) -> Option<WorkerId> {
        self.state
            .iter()
            .position(|&s| s == Slot::Free)
            .map(|i| WorkerId::new(i as u32))
    }

    /// The first free worker in `list` order (reservation lists are
    /// ascending, so this is also the lowest-indexed one).
    #[inline]
    pub fn first_free_in(&self, list: &[WorkerId]) -> Option<WorkerId> {
        list.iter()
            .copied()
            .find(|w| self.state[w.index()] == Slot::Free)
    }

    #[inline]
    pub fn quarantined_count(&self) -> usize {
        self.quarantined_count
    }

    #[inline]
    pub fn is_quarantined(&self, worker: usize) -> bool {
        self.state.get(worker) == Some(&Slot::Quarantined)
    }

    pub fn quarantines(&self) -> u64 {
        self.quarantines_total
    }

    pub fn releases(&self) -> u64 {
        self.releases_total
    }

    /// Whether every worker is either idle or quarantined (the shutdown
    /// quiescence condition: a stalled core must not wedge teardown).
    #[inline]
    pub fn quiescent(&self) -> bool {
        self.free_count + self.quarantined_count == self.num_workers
    }

    /// Marks `worker` busy with a request of type `ty`.
    #[inline]
    pub fn assign(&mut self, worker: WorkerId, ty: TypeId, queued_for: Nanos, now: Nanos) {
        debug_assert_eq!(self.state[worker.index()], Slot::Free);
        self.state[worker.index()] = Slot::Busy;
        self.busy_meta[worker.index()] = (ty, queued_for, now);
        self.free_count -= 1;
    }

    /// Frees `worker`, returning its in-flight metadata `(ty, queued_for,
    /// started, released_from_quarantine)`.
    ///
    /// # Panics
    ///
    /// Panics if `worker` was not busy — a dispatcher/worker protocol
    /// violation, not a recoverable condition.
    #[inline]
    pub fn complete(&mut self, worker: WorkerId) -> (TypeId, Nanos, Nanos, bool) {
        let slot = self
            .state
            .get_mut(worker.index())
            // audit:allow(A1): crashing on a completion from an unknown
            // worker is the contract (see Panics above)
            .expect("worker id out of range");
        let was = *slot;
        // audit:allow(A1): same contract — completion from an idle worker
        assert!(was != Slot::Free, "completion from an idle worker");
        *slot = Slot::Free;
        self.free_count += 1;
        let (ty, queued_for, started) = self.busy_meta[worker.index()];
        let released = was == Slot::Quarantined;
        if released {
            // The presumed-stalled worker answered after all: release it
            // back into the free pool.
            self.quarantined_count -= 1;
            self.releases_total += 1;
        }
        (ty, queued_for, started, released)
    }

    /// Quarantines any busy worker whose in-flight request has run for
    /// `factor ×` its type's estimated mean (floored at `min_stall`; types
    /// without an estimate use `min_stall` alone). `on_quarantine(worker,
    /// ty, running)` fires once per new quarantine, for telemetry.
    pub fn check_health(
        &mut self,
        now: Nanos,
        factor: f64,
        min_stall: Nanos,
        estimate_ns: impl Fn(TypeId) -> Option<f64>,
        mut on_quarantine: impl FnMut(usize, TypeId, Nanos),
    ) {
        for worker in 0..self.num_workers {
            if self.state[worker] != Slot::Busy {
                continue;
            }
            let (ty, _queued_for, started) = self.busy_meta[worker];
            let running = now.saturating_sub(started);
            let threshold = match estimate_ns(ty) {
                Some(est) => Nanos::from_nanos((factor * est) as u64).max(min_stall),
                None => min_stall,
            };
            if running > threshold {
                self.state[worker] = Slot::Quarantined;
                self.quarantined_count += 1;
                self.quarantines_total += 1;
                on_quarantine(worker, ty, running);
            }
        }
    }

    /// Resizes the pool. Growing takes effect immediately; shrinking
    /// requires the surrendered (highest-indexed) workers to be idle.
    /// Returns `Err(())` without changes when shrinking would drop a busy
    /// worker or `new_workers` is zero. Reconfiguration lane, never per
    /// request — cold marks the audit frontier.
    #[cold]
    pub fn resize(&mut self, new_workers: usize) -> Result<(), ()> {
        if new_workers == 0 {
            return Err(());
        }
        if new_workers < self.num_workers
            && (new_workers..self.num_workers).any(|wkr| self.state[wkr] != Slot::Free)
        {
            return Err(());
        }
        self.num_workers = new_workers;
        // New workers (old..new_workers) start free and healthy.
        self.state.resize(new_workers, Slot::Free);
        self.busy_meta
            .resize(new_workers, (TypeId::UNKNOWN, Nanos::ZERO, Nanos::ZERO));
        self.quarantined_count = self
            .state
            .iter()
            .filter(|&&s| s == Slot::Quarantined)
            .count();
        self.free_count = self.state.iter().filter(|&&s| s == Slot::Free).count();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_complete_roundtrip_tracks_free_count() {
        let mut t = WorkerTable::new(2);
        assert_eq!(t.free_count(), 2);
        assert_eq!(t.first_free(), Some(WorkerId::new(0)));
        t.assign(WorkerId::new(0), TypeId::new(1), Nanos::ZERO, Nanos::ZERO);
        assert_eq!(t.free_count(), 1);
        assert_eq!(t.first_free(), Some(WorkerId::new(1)));
        assert!(!t.is_free(0));
        let (ty, _, _, released) = t.complete(WorkerId::new(0));
        assert_eq!(ty, TypeId::new(1));
        assert!(!released);
        assert_eq!(t.free_count(), 2);
        assert!(t.quiescent());
    }

    #[test]
    fn health_check_quarantines_and_release_counts() {
        let mut t = WorkerTable::new(1);
        t.assign(WorkerId::new(0), TypeId::new(0), Nanos::ZERO, Nanos::ZERO);
        let mut fired = 0;
        t.check_health(
            Nanos::from_micros(100),
            5.0,
            Nanos::from_micros(1),
            |_| Some(1_000.0),
            |_, _, _| fired += 1,
        );
        assert_eq!(fired, 1);
        assert!(t.is_quarantined(0));
        assert!(t.quiescent(), "quarantined workers do not block shutdown");
        // Re-checking never double-counts.
        t.check_health(
            Nanos::from_micros(101),
            5.0,
            Nanos::from_micros(1),
            |_| Some(1_000.0),
            |_, _, _| fired += 1,
        );
        assert_eq!(fired, 1);
        assert_eq!(t.quarantines(), 1);
        let (_, _, _, released) = t.complete(WorkerId::new(0));
        assert!(released);
        assert_eq!(t.releases(), 1);
        assert_eq!(t.quarantined_count(), 0);
    }

    #[test]
    fn resize_guards_busy_workers() {
        let mut t = WorkerTable::new(3);
        t.assign(WorkerId::new(2), TypeId::new(0), Nanos::ZERO, Nanos::ZERO);
        assert!(t.resize(2).is_err(), "cannot drop a busy worker");
        assert!(t.resize(0).is_err());
        let _ = t.complete(WorkerId::new(2));
        t.resize(2).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.free_count(), 2);
        t.resize(5).unwrap();
        assert_eq!(t.free_count(), 5);
    }

    #[test]
    fn table_spans_many_workers() {
        let mut t = WorkerTable::new(130);
        assert_eq!(t.free_count(), 130);
        for wkr in 0..128 {
            t.assign(WorkerId::new(wkr), TypeId::new(0), Nanos::ZERO, Nanos::ZERO);
        }
        assert_eq!(t.first_free(), Some(WorkerId::new(128)));
        assert!(!t.is_free(127));
        assert!(t.is_free(129));
        t.assign(WorkerId::new(128), TypeId::new(0), Nanos::ZERO, Nanos::ZERO);
        t.assign(WorkerId::new(129), TypeId::new(0), Nanos::ZERO, Nanos::ZERO);
        assert_eq!(t.first_free(), None);
        assert_eq!(t.free_count(), 0);
        let _ = t.complete(WorkerId::new(64));
        assert_eq!(t.first_free(), Some(WorkerId::new(64)));
        // Health check walks every busy worker.
        let mut seen = 0;
        t.check_health(
            Nanos::from_micros(100),
            1.0,
            Nanos::from_nanos(1),
            |_| None,
            |_, _, _| seen += 1,
        );
        assert_eq!(seen, 129, "all busy workers quarantined");
        assert!(t.quiescent());
    }

    #[test]
    fn first_free_in_respects_list_order() {
        let mut t = WorkerTable::new(4);
        t.assign(WorkerId::new(1), TypeId::new(0), Nanos::ZERO, Nanos::ZERO);
        let list = [WorkerId::new(1), WorkerId::new(2), WorkerId::new(3)];
        assert_eq!(t.first_free_in(&list), Some(WorkerId::new(2)));
        t.assign(WorkerId::new(2), TypeId::new(0), Nanos::ZERO, Nanos::ZERO);
        t.assign(WorkerId::new(3), TypeId::new(0), Nanos::ZERO, Nanos::ZERO);
        assert_eq!(t.first_free_in(&list), None, "worker 0 is not in the list");
    }

    #[test]
    #[should_panic(expected = "completion from an idle worker")]
    fn double_completion_panics() {
        let mut t = WorkerTable::new(2);
        t.assign(WorkerId::new(1), TypeId::new(0), Nanos::ZERO, Nanos::ZERO);
        let _ = t.complete(WorkerId::new(1));
        let _ = t.complete(WorkerId::new(1));
    }
}
