//! Centralized first-come-first-served (paper Table 1's c-FCFS).
//!
//! One global queue, strict arrival order, any free worker — the
//! single-queue baseline of the paper's evaluation (and what
//! `DarcEngine`'s legacy `EngineMode::CFcfs` used to emulate with typed
//! queues and sequence numbers). A dedicated engine keeps the hot path a
//! plain `pop_front` and lets DARC's code stop special-casing FCFS.

use std::sync::Arc;

use persephone_telemetry::{DispatchKind, Telemetry};

use super::common::{tslot, WorkerTable};
use super::engine::{Dispatch, EngineReport, ScheduleEngine};
use super::EngineConfig;
use crate::arena::ArenaRing;
use crate::profile::Profiler;
use crate::time::Nanos;
use crate::types::{TypeId, WorkerId};

struct Entry<R> {
    ty: TypeId,
    req: R,
    enqueued: Nanos,
}

/// Centralized FCFS over one global queue.
///
/// Flow control bounds the *global* queue at `cfg.queue_capacity` entries
/// (`0` = unbounded) — a single-queue policy has no per-type backlog to
/// shed selectively. Deadline shedding expires the queue head only: the
/// head is always the oldest entry, so anything behind it is younger.
pub struct CfcfsEngine<R> {
    queue: ArenaRing<Entry<R>>,
    capacity: usize,
    workers: WorkerTable,
    profiler: Profiler,
    deadline_slowdown: Option<f64>,
    stall_factor: Option<f64>,
    min_stall: Nanos,
    /// Per telemetry slot (`num_types` = UNKNOWN): queued entries, drops.
    pending: Vec<usize>,
    drops: Vec<u64>,
    expired_buf: ArenaRing<(TypeId, R)>,
    expired_total: u64,
    num_types: usize,
    telemetry: Option<Arc<Telemetry>>,
}

impl<R> CfcfsEngine<R> {
    /// Creates a c-FCFS engine for `num_types` request types.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.num_workers == 0` or `hints.len() != num_types`.
    pub fn new(cfg: EngineConfig, num_types: usize, hints: &[Option<Nanos>]) -> Self {
        assert!(cfg.num_workers > 0, "need at least one worker");
        CfcfsEngine {
            queue: ArenaRing::with_slots(cfg.queue_capacity),
            capacity: cfg.queue_capacity,
            workers: WorkerTable::new(cfg.num_workers),
            profiler: Profiler::new(cfg.profiler, num_types, hints),
            deadline_slowdown: cfg.overload.deadline_slowdown,
            stall_factor: cfg.overload.stall_factor,
            min_stall: cfg.overload.min_stall,
            pending: vec![0; num_types + 1],
            drops: vec![0; num_types + 1],
            expired_buf: ArenaRing::new(),
            expired_total: 0,
            num_types,
            telemetry: None,
        }
    }

    /// The workload profiler (read-only view).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Entries in the global queue.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    fn expire_one(&mut self, ty: TypeId, req: R, waited: Nanos, now: Nanos) {
        self.pending[tslot(ty, self.num_types)] -= 1;
        self.expired_total += 1;
        if let Some(t) = &self.telemetry {
            t.record_expired(tslot(ty, self.num_types), waited.as_nanos(), now.as_nanos());
        }
        self.expired_buf.push_back((ty, req));
    }
}

impl<R: Send> ScheduleEngine<R> for CfcfsEngine<R> {
    fn policy_name(&self) -> &'static str {
        "c-FCFS"
    }

    fn num_workers(&self) -> usize {
        self.workers.len()
    }

    fn num_types(&self) -> usize {
        self.num_types
    }

    fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = Some(telemetry);
    }

    fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    fn enqueue(&mut self, ty: TypeId, req: R, now: Nanos) -> Result<(), R> {
        // Ratios are profiled at arrival, exactly as in DarcEngine, so a
        // later switch to DARC sees consistent history semantics.
        self.profiler.record_arrival(ty);
        let slot = tslot(ty, self.num_types);
        if let Some(t) = &self.telemetry {
            t.record_arrival(slot);
        }
        if self.capacity != 0 && self.queue.len() >= self.capacity {
            self.drops[slot] += 1;
            if let Some(t) = &self.telemetry {
                t.record_drop(slot, self.queue.len() as u64, now.as_nanos());
            }
            return Err(req);
        }
        self.queue.push_back(Entry {
            ty,
            req,
            enqueued: now,
        });
        self.pending[slot] += 1;
        if let Some(t) = &self.telemetry {
            t.record_queue_depth(slot, self.queue.len() as u64);
        }
        Ok(())
    }

    fn poll(&mut self, now: Nanos) -> Option<Dispatch<R>> {
        if self.queue.is_empty() {
            return None;
        }
        // `first_free` is the emptiness check for the worker side: one
        // bitmask word scan, no separate counter load.
        let worker = self.workers.first_free()?;
        let entry = self.queue.pop_front()?;
        self.pending[tslot(entry.ty, self.num_types)] -= 1;
        let queued_for = now.saturating_sub(entry.enqueued);
        self.workers.assign(worker, entry.ty, queued_for, now);
        self.profiler.record_dispatch_delay(entry.ty, queued_for);
        if let Some(t) = &self.telemetry {
            t.record_dispatch(
                tslot(entry.ty, self.num_types),
                worker.index(),
                DispatchKind::Fcfs,
                now.as_nanos(),
            );
        }
        Some(Dispatch {
            worker,
            ty: entry.ty,
            req: entry.req,
            queued_for,
            kind: DispatchKind::Fcfs,
        })
    }

    fn complete(&mut self, worker: WorkerId, service: Nanos, now: Nanos) {
        let (ty, queued_for, started, released) = self.workers.complete(worker);
        if released {
            if let Some(t) = &self.telemetry {
                t.record_release(
                    worker.index(),
                    now.saturating_sub(started).as_nanos(),
                    now.as_nanos(),
                );
            }
        }
        self.profiler.record_completion(ty, service);
        if let Some(t) = &self.telemetry {
            let sojourn = queued_for.saturating_add(service);
            t.record_completion(
                tslot(ty, self.num_types),
                worker.index(),
                sojourn.as_nanos(),
                service.as_nanos(),
            );
        }
        // Keep the EWMA estimates fresh (used by shedding and quarantine);
        // there is no reservation to install, so this is the whole update.
        if self.profiler.window_full() {
            self.profiler.commit_window_quiet();
        }
    }

    fn expire_heads(&mut self, now: Nanos) {
        let Some(slowdown) = self.deadline_slowdown else {
            return;
        };
        while let Some(head) = self.queue.front() {
            let Some(est) = self.profiler.estimate_ns(head.ty) else {
                return; // no estimate: the head (oldest entry) never expires
            };
            let deadline = Nanos::from_nanos((slowdown * est) as u64);
            let waited = now.saturating_sub(head.enqueued);
            if waited <= deadline {
                return;
            }
            let Some(entry) = self.queue.pop_front() else {
                return;
            };
            self.expire_one(entry.ty, entry.req, waited, now);
        }
    }

    fn take_expired(&mut self) -> Option<(TypeId, R)> {
        self.expired_buf.pop_front()
    }

    fn check_health(&mut self, now: Nanos) {
        let Some(factor) = self.stall_factor else {
            return;
        };
        let profiler = &self.profiler;
        let telemetry = &self.telemetry;
        let num_types = self.num_types;
        self.workers.check_health(
            now,
            factor,
            self.min_stall,
            |ty| profiler.estimate_ns(ty),
            |w, ty, running| {
                if let Some(t) = telemetry {
                    t.record_quarantine(
                        w,
                        tslot(ty, num_types),
                        running.as_nanos(),
                        now.as_nanos(),
                    );
                }
            },
        );
    }

    fn is_quarantined(&self, worker: WorkerId) -> bool {
        self.workers.is_quarantined(worker.index())
    }

    fn drain_all(&mut self, now: Nanos, out: &mut Vec<(TypeId, R)>) {
        while let Some(e) = self.queue.pop_front() {
            let waited = now.saturating_sub(e.enqueued);
            self.pending[tslot(e.ty, self.num_types)] -= 1;
            self.expired_total += 1;
            if let Some(t) = &self.telemetry {
                t.record_expired(
                    tslot(e.ty, self.num_types),
                    waited.as_nanos(),
                    now.as_nanos(),
                );
            }
            out.push((e.ty, e.req));
        }
    }

    fn quiescent(&self) -> bool {
        self.workers.quiescent()
    }

    fn free_workers(&self) -> usize {
        self.workers.free_count()
    }

    fn pending(&self, ty: TypeId) -> usize {
        self.pending[tslot(ty, self.num_types)]
    }

    fn total_pending(&self) -> usize {
        self.queue.len()
    }

    fn drops(&self, ty: TypeId) -> u64 {
        self.drops[tslot(ty, self.num_types)]
    }

    fn total_drops(&self) -> u64 {
        self.drops.iter().sum()
    }

    fn report(&self) -> EngineReport {
        EngineReport {
            policy: "c-FCFS",
            updates: 0,
            quarantines: self.workers.quarantines(),
            releases: self.workers.releases(),
            expired: self.expired_total,
            guaranteed: vec![0; self.num_types],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micros(n: u64) -> Nanos {
        Nanos::from_micros(n)
    }

    fn engine(workers: usize) -> CfcfsEngine<u32> {
        CfcfsEngine::new(
            EngineConfig::darc(workers),
            2,
            &[Some(micros(1)), Some(micros(100))],
        )
    }

    #[test]
    fn strict_global_arrival_order() {
        let mut eng = engine(1);
        eng.enqueue(TypeId::new(1), 10, micros(0)).unwrap();
        eng.enqueue(TypeId::new(0), 20, micros(1)).unwrap();
        eng.enqueue(TypeId::UNKNOWN, 30, micros(2)).unwrap();
        let d = eng.poll(micros(3)).unwrap();
        assert_eq!(d.req, 10, "earliest arrival wins regardless of type");
        assert_eq!(d.kind, DispatchKind::Fcfs);
        eng.complete(d.worker, micros(1), micros(4));
        assert_eq!(eng.poll(micros(4)).unwrap().req, 20);
        eng.complete(WorkerId::new(0), micros(1), micros(5));
        let d3 = eng.poll(micros(5)).unwrap();
        assert_eq!((d3.req, d3.ty), (30, TypeId::UNKNOWN));
    }

    #[test]
    fn picks_lowest_indexed_free_worker() {
        let mut eng = engine(3);
        for i in 0..3 {
            eng.enqueue(TypeId::new(0), i, micros(0)).unwrap();
        }
        let workers: Vec<u32> = std::iter::from_fn(|| eng.poll(micros(0)))
            .map(|d| d.worker.index() as u32)
            .collect();
        assert_eq!(workers, vec![0, 1, 2]);
        eng.complete(WorkerId::new(1), micros(1), micros(1));
        eng.enqueue(TypeId::new(0), 9, micros(1)).unwrap();
        assert_eq!(eng.poll(micros(1)).unwrap().worker, WorkerId::new(1));
    }

    #[test]
    fn flow_control_bounds_the_global_queue() {
        let mut cfg = EngineConfig::darc(1);
        cfg.queue_capacity = 2;
        let mut eng: CfcfsEngine<u32> = CfcfsEngine::new(cfg, 2, &[None, None]);
        for i in 0..5 {
            let _ = eng.enqueue(TypeId::new(i % 2), i, micros(0));
        }
        assert_eq!(eng.total_pending(), 2);
        assert_eq!(eng.total_drops(), 3);
        assert_eq!(eng.backlog(), 2);
    }

    #[test]
    fn head_only_deadline_shedding() {
        let mut cfg = EngineConfig::darc(1);
        cfg.overload.deadline_slowdown = Some(10.0);
        let mut eng: CfcfsEngine<u32> =
            CfcfsEngine::new(cfg, 2, &[Some(micros(1)), Some(micros(100))]);
        // Occupy the lone worker so the queue builds.
        eng.enqueue(TypeId::new(0), 0, micros(0)).unwrap();
        let d = eng.poll(micros(0)).unwrap();
        eng.enqueue(TypeId::new(0), 1, micros(0)).unwrap();
        eng.enqueue(TypeId::new(1), 2, micros(1)).unwrap();
        // At t = 11 µs the head (type 0, deadline 10 µs) expired; the next
        // entry is a long with a 1 ms deadline and survives.
        eng.expire_heads(micros(11));
        assert_eq!(eng.take_expired(), Some((TypeId::new(0), 1)));
        assert_eq!(eng.take_expired(), None);
        assert_eq!(eng.total_pending(), 1);
        assert_eq!(eng.pending(TypeId::new(1)), 1);
        eng.complete(d.worker, micros(11), micros(11));
        // Off by default.
        let mut plain = engine(1);
        plain.enqueue(TypeId::new(0), 1, micros(0)).unwrap();
        plain.expire_heads(Nanos::from_secs(100));
        assert_eq!(plain.take_expired(), None);
    }

    #[test]
    fn drain_all_empties_queue_and_counts() {
        let mut eng = engine(2);
        eng.enqueue(TypeId::new(0), 1, micros(0)).unwrap();
        eng.enqueue(TypeId::UNKNOWN, 2, micros(0)).unwrap();
        let mut drained = Vec::new();
        eng.drain_all(micros(5), &mut drained);
        assert_eq!(drained.len(), 2);
        assert_eq!(eng.total_pending(), 0);
        assert_eq!(eng.report().expired, 2);
        assert!(eng.quiescent());
    }

    #[test]
    fn report_has_no_reservations() {
        let mut eng = engine(2);
        eng.enqueue(TypeId::new(0), 1, micros(0)).unwrap();
        let d = eng.poll(micros(0)).unwrap();
        eng.complete(d.worker, micros(1), micros(1));
        let r = eng.report();
        assert_eq!(r.policy, "c-FCFS");
        assert_eq!(r.updates, 0);
        assert_eq!(r.guaranteed, vec![0, 0]);
    }
}
