//! Non-preemptive shortest-job-first (paper Table 1's SJF).
//!
//! Typed queues, dispatched in ascending order of the *profiled* (or
//! hinted) per-type mean service time — the realizable form of SJF for a
//! dispatcher that only knows request types, not exact sizes. Within a
//! type (and across types with equal estimates) order is FIFO by global
//! arrival sequence, so equal-length requests never overtake each other.
//! Types without any estimate, and UNKNOWN requests, sort last.
//!
//! Estimates adapt online: every full profiling window is committed into
//! the EWMA, so a type whose service time drifts re-sorts itself without
//! any reservation machinery.

use std::sync::Arc;

use persephone_telemetry::{DispatchKind, Telemetry};

use super::common::{tslot, WorkerTable};
use super::engine::{Dispatch, EngineReport, ScheduleEngine};
use super::EngineConfig;
use crate::arena::ArenaRing;
use crate::profile::Profiler;
use crate::queue::TypedQueue;
use crate::time::Nanos;
use crate::types::{TypeId, WorkerId};

/// Shortest-job-first over profiled type service times.
pub struct SjfEngine<R> {
    queues: Vec<TypedQueue<R>>,
    unknown: TypedQueue<R>,
    seq: u64,
    workers: WorkerTable,
    profiler: Profiler,
    deadline_slowdown: Option<f64>,
    stall_factor: Option<f64>,
    min_stall: Nanos,
    expired_buf: ArenaRing<(TypeId, R)>,
    expired_total: u64,
    num_types: usize,
    telemetry: Option<Arc<Telemetry>>,
}

impl<R> SjfEngine<R> {
    /// Creates an SJF engine for `num_types` request types.
    ///
    /// `hints[i]` seeds type `i`'s service-time estimate; unhinted types
    /// sort last until their first profiling window commits.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.num_workers == 0` or `hints.len() != num_types`.
    pub fn new(cfg: EngineConfig, num_types: usize, hints: &[Option<Nanos>]) -> Self {
        assert!(cfg.num_workers > 0, "need at least one worker");
        SjfEngine {
            queues: (0..num_types)
                .map(|_| TypedQueue::new(cfg.queue_capacity))
                .collect(),
            unknown: TypedQueue::new(cfg.queue_capacity),
            seq: 0,
            workers: WorkerTable::new(cfg.num_workers),
            profiler: Profiler::new(cfg.profiler, num_types, hints),
            deadline_slowdown: cfg.overload.deadline_slowdown,
            stall_factor: cfg.overload.stall_factor,
            min_stall: cfg.overload.min_stall,
            expired_buf: ArenaRing::new(),
            expired_total: 0,
            num_types,
            telemetry: None,
        }
    }

    /// The workload profiler (read-only view).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Picks the next queue to serve: smallest estimated service time,
    /// FIFO (head sequence number) among equals; estimate-less queues and
    /// UNKNOWN sort last. Returns `num_types` for the UNKNOWN queue.
    fn shortest_queue(&self) -> Option<usize> {
        let mut best: Option<(f64, u64, usize)> = None;
        for (i, q) in self.queues.iter().enumerate() {
            let Some(head) = q.front() else { continue };
            let est = self
                .profiler
                .estimate_ns(TypeId::new(i as u32))
                .unwrap_or(f64::INFINITY);
            let better = match &best {
                None => true,
                Some((b_est, b_seq, _)) => est < *b_est || (est == *b_est && head.seq < *b_seq),
            };
            if better {
                best = Some((est, head.seq, i));
            }
        }
        if let Some(head) = self.unknown.front() {
            let better = match &best {
                None => true,
                Some((b_est, b_seq, _)) => b_est.is_infinite() && head.seq < *b_seq,
            };
            if better {
                best = Some((f64::INFINITY, head.seq, self.num_types));
            }
        }
        best.map(|(_, _, i)| i)
    }
}

impl<R: Send> ScheduleEngine<R> for SjfEngine<R> {
    fn policy_name(&self) -> &'static str {
        "SJF"
    }

    fn num_workers(&self) -> usize {
        self.workers.len()
    }

    fn num_types(&self) -> usize {
        self.num_types
    }

    fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = Some(telemetry);
    }

    fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    fn enqueue(&mut self, ty: TypeId, req: R, now: Nanos) -> Result<(), R> {
        self.profiler.record_arrival(ty);
        let seq = self.seq;
        self.seq += 1;
        let slot = tslot(ty, self.num_types);
        let q = if !ty.is_unknown() && ty.index() < self.queues.len() {
            &mut self.queues[ty.index()]
        } else {
            &mut self.unknown
        };
        let depth_if_full = q.len() as u64;
        let result = q.push(req, now, seq);
        if let Some(t) = &self.telemetry {
            t.record_arrival(slot);
            match &result {
                Ok(()) => t.record_queue_depth(slot, depth_if_full + 1),
                Err(_) => t.record_drop(slot, depth_if_full, now.as_nanos()),
            }
        }
        result
    }

    fn poll(&mut self, now: Nanos) -> Option<Dispatch<R>> {
        if self.workers.free_count() == 0 {
            return None;
        }
        let qi = self.shortest_queue()?;
        let worker = self.workers.first_free()?;
        let (ty, entry) = if qi == self.num_types {
            (TypeId::UNKNOWN, self.unknown.pop()?)
        } else {
            (TypeId::new(qi as u32), self.queues[qi].pop()?)
        };
        let queued_for = now.saturating_sub(entry.enqueued);
        self.workers.assign(worker, ty, queued_for, now);
        self.profiler.record_dispatch_delay(ty, queued_for);
        if let Some(t) = &self.telemetry {
            t.record_dispatch(
                tslot(ty, self.num_types),
                worker.index(),
                DispatchKind::Fcfs,
                now.as_nanos(),
            );
        }
        Some(Dispatch {
            worker,
            ty,
            req: entry.req,
            queued_for,
            kind: DispatchKind::Fcfs,
        })
    }

    fn complete(&mut self, worker: WorkerId, service: Nanos, now: Nanos) {
        let (ty, queued_for, started, released) = self.workers.complete(worker);
        if released {
            if let Some(t) = &self.telemetry {
                t.record_release(
                    worker.index(),
                    now.saturating_sub(started).as_nanos(),
                    now.as_nanos(),
                );
            }
        }
        self.profiler.record_completion(ty, service);
        if let Some(t) = &self.telemetry {
            let sojourn = queued_for.saturating_add(service);
            t.record_completion(
                tslot(ty, self.num_types),
                worker.index(),
                sojourn.as_nanos(),
                service.as_nanos(),
            );
        }
        // Fold the window into the EWMA so the SJF ordering tracks drift.
        if self.profiler.window_full() {
            self.profiler.commit_window_quiet();
        }
    }

    fn expire_heads(&mut self, now: Nanos) {
        let Some(slowdown) = self.deadline_slowdown else {
            return;
        };
        for i in 0..self.num_types {
            let ty = TypeId::new(i as u32);
            let Some(est) = self.profiler.estimate_ns(ty) else {
                continue;
            };
            let deadline = Nanos::from_nanos((slowdown * est) as u64);
            while let Some(entry) = self.queues[i].pop_expired(now, deadline) {
                let waited = now.saturating_sub(entry.enqueued);
                self.expired_total += 1;
                if let Some(t) = &self.telemetry {
                    t.record_expired(i, waited.as_nanos(), now.as_nanos());
                }
                self.expired_buf.push_back((ty, entry.req));
            }
        }
    }

    fn take_expired(&mut self) -> Option<(TypeId, R)> {
        self.expired_buf.pop_front()
    }

    fn check_health(&mut self, now: Nanos) {
        let Some(factor) = self.stall_factor else {
            return;
        };
        let profiler = &self.profiler;
        let telemetry = &self.telemetry;
        let num_types = self.num_types;
        self.workers.check_health(
            now,
            factor,
            self.min_stall,
            |ty| profiler.estimate_ns(ty),
            |w, ty, running| {
                if let Some(t) = telemetry {
                    t.record_quarantine(
                        w,
                        tslot(ty, num_types),
                        running.as_nanos(),
                        now.as_nanos(),
                    );
                }
            },
        );
    }

    fn is_quarantined(&self, worker: WorkerId) -> bool {
        self.workers.is_quarantined(worker.index())
    }

    fn drain_all(&mut self, now: Nanos, out: &mut Vec<(TypeId, R)>) {
        let before = out.len();
        for i in 0..self.num_types {
            let ty = TypeId::new(i as u32);
            for e in self.queues[i].drain() {
                let waited = now.saturating_sub(e.enqueued);
                if let Some(t) = &self.telemetry {
                    t.record_expired(i, waited.as_nanos(), now.as_nanos());
                }
                out.push((ty, e.req));
            }
        }
        for e in self.unknown.drain() {
            let waited = now.saturating_sub(e.enqueued);
            if let Some(t) = &self.telemetry {
                t.record_expired(self.num_types, waited.as_nanos(), now.as_nanos());
            }
            out.push((TypeId::UNKNOWN, e.req));
        }
        self.expired_total += (out.len() - before) as u64;
    }

    fn quiescent(&self) -> bool {
        self.workers.quiescent()
    }

    fn free_workers(&self) -> usize {
        self.workers.free_count()
    }

    fn pending(&self, ty: TypeId) -> usize {
        if ty.is_unknown() {
            self.unknown.len()
        } else {
            self.queues.get(ty.index()).map(|q| q.len()).unwrap_or(0)
        }
    }

    fn total_pending(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum::<usize>() + self.unknown.len()
    }

    fn drops(&self, ty: TypeId) -> u64 {
        if ty.is_unknown() {
            self.unknown.drops()
        } else {
            self.queues.get(ty.index()).map(|q| q.drops()).unwrap_or(0)
        }
    }

    fn total_drops(&self) -> u64 {
        self.queues.iter().map(|q| q.drops()).sum::<u64>() + self.unknown.drops()
    }

    fn report(&self) -> EngineReport {
        EngineReport {
            policy: "SJF",
            updates: 0,
            quarantines: self.workers.quarantines(),
            releases: self.workers.releases(),
            expired: self.expired_total,
            guaranteed: vec![0; self.num_types],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micros(n: u64) -> Nanos {
        Nanos::from_micros(n)
    }

    fn engine(workers: usize) -> SjfEngine<u32> {
        SjfEngine::new(
            EngineConfig::darc(workers),
            2,
            &[Some(micros(1)), Some(micros(100))],
        )
    }

    #[test]
    fn shorter_type_preempts_queue_order() {
        let mut eng = engine(1);
        // Long arrives first, short second: SJF serves the short first.
        eng.enqueue(TypeId::new(1), 10, micros(0)).unwrap();
        eng.enqueue(TypeId::new(0), 20, micros(1)).unwrap();
        let d = eng.poll(micros(2)).unwrap();
        assert_eq!(d.ty, TypeId::new(0));
        eng.complete(d.worker, micros(1), micros(3));
        assert_eq!(eng.poll(micros(3)).unwrap().ty, TypeId::new(1));
    }

    #[test]
    fn fifo_within_a_type() {
        let mut eng = engine(1);
        eng.enqueue(TypeId::new(0), 1, micros(0)).unwrap();
        eng.enqueue(TypeId::new(0), 2, micros(1)).unwrap();
        let d = eng.poll(micros(2)).unwrap();
        assert_eq!(d.req, 1);
        eng.complete(d.worker, micros(1), micros(3));
        assert_eq!(eng.poll(micros(3)).unwrap().req, 2);
    }

    #[test]
    fn unhinted_and_unknown_sort_last() {
        let mut eng: SjfEngine<u32> =
            SjfEngine::new(EngineConfig::darc(1), 2, &[None, Some(micros(100))]);
        // UNKNOWN and the unhinted type 0 both lose to the hinted long.
        eng.enqueue(TypeId::UNKNOWN, 1, micros(0)).unwrap();
        eng.enqueue(TypeId::new(0), 2, micros(1)).unwrap();
        eng.enqueue(TypeId::new(1), 3, micros(2)).unwrap();
        let d = eng.poll(micros(3)).unwrap();
        assert_eq!(d.req, 3, "only the hinted type has a finite estimate");
        eng.complete(d.worker, micros(100), micros(103));
        // Among the estimate-less, FIFO by arrival: UNKNOWN came first.
        assert_eq!(eng.poll(micros(103)).unwrap().req, 1);
    }

    #[test]
    fn estimates_adapt_after_windows_commit() {
        let mut cfg = EngineConfig::darc(1);
        cfg.profiler.min_samples = 8;
        // Hints claim type 0 is the short one; reality is inverted.
        let mut eng: SjfEngine<u32> = SjfEngine::new(cfg, 2, &[Some(micros(1)), Some(micros(100))]);
        let mut now = Nanos::ZERO;
        // Several windows of truth: type 0 takes 100 µs, type 1 takes 1 µs.
        for i in 0..64u32 {
            let ty = TypeId::new(i % 2);
            eng.enqueue(ty, i, now).unwrap();
            let d = eng.poll(now).unwrap();
            let service = if d.ty == TypeId::new(0) {
                micros(100)
            } else {
                micros(1)
            };
            now += service;
            eng.complete(d.worker, service, now);
        }
        // Now the ordering must follow the measured times: type 1 first.
        eng.enqueue(TypeId::new(0), 100, now).unwrap();
        eng.enqueue(TypeId::new(1), 101, now).unwrap();
        assert_eq!(eng.poll(now).unwrap().ty, TypeId::new(1));
    }

    #[test]
    fn flow_control_is_per_type() {
        let mut cfg = EngineConfig::darc(1);
        cfg.queue_capacity = 2;
        let mut eng: SjfEngine<u32> = SjfEngine::new(cfg, 2, &[Some(micros(1)), Some(micros(100))]);
        for i in 0..5 {
            let _ = eng.enqueue(TypeId::new(1), i, micros(0));
        }
        assert_eq!(eng.drops(TypeId::new(1)), 3);
        assert!(eng.enqueue(TypeId::new(0), 9, micros(0)).is_ok());
        assert_eq!(eng.drops(TypeId::new(0)), 0);
        assert_eq!(eng.total_drops(), 3);
    }

    #[test]
    fn deadline_shedding_and_drain() {
        let mut cfg = EngineConfig::darc(1);
        cfg.overload.deadline_slowdown = Some(10.0);
        let mut eng: SjfEngine<u32> = SjfEngine::new(cfg, 2, &[Some(micros(1)), Some(micros(100))]);
        eng.enqueue(TypeId::new(0), 0, micros(0)).unwrap();
        let d = eng.poll(micros(0)).unwrap();
        eng.enqueue(TypeId::new(0), 1, micros(0)).unwrap();
        eng.expire_heads(micros(11));
        assert_eq!(eng.take_expired(), Some((TypeId::new(0), 1)));
        eng.complete(d.worker, micros(11), micros(11));
        eng.enqueue(TypeId::new(1), 2, micros(11)).unwrap();
        let mut drained = Vec::new();
        eng.drain_all(micros(12), &mut drained);
        assert_eq!(drained, vec![(TypeId::new(1), 2)]);
        assert_eq!(eng.report().expired, 2);
    }
}
