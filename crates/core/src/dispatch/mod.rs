//! Pluggable dispatch engines (paper §3 Algorithm 1, §4.3.3, Tables 1 & 5).
//!
//! The dispatcher's scheduling brain is a [`ScheduleEngine`]: it owns the
//! request queues, the free-worker list, and the overload-control
//! machinery, and answers `enqueue` / `poll` / `complete`. The same
//! engines are shared verbatim by the discrete-event simulator and the
//! threaded runtime.
//!
//! ## Module split
//!
//! * [`engine`] — the [`ScheduleEngine`] trait, [`Dispatch`] decisions,
//!   and the policy-agnostic [`EngineReport`].
//! * [`darc`] — [`DarcEngine`], the paper's contribution: typed queues,
//!   c-FCFS warm-up, profiled reservations, cycle stealing, spillway.
//! * [`cfcfs`] — [`CfcfsEngine`], centralized FCFS over one global queue.
//! * [`sjf`] — [`SjfEngine`], non-preemptive shortest-job-first by
//!   profiled type service time.
//! * [`fixed_priority`] — [`FixedPriorityEngine`], strict priority by
//!   hinted type service time, work conserving.
//! * [`dfcfs`] — [`DfcfsEngine`], decentralized FCFS with RSS-style
//!   random steering onto per-worker queues.
//!
//! [`build_engine`] maps a [`Policy`](crate::policy::Policy) onto a boxed
//! engine; the runtime's hot loop stays generic (monomorphized) over the
//! concrete engine type.
//!
//! The time-sharing policy of Table 1 is deliberately absent: it requires
//! preempting a running request, which the non-preemptive threaded
//! runtime cannot do. It remains simulator-only (`persephone-sim`'s `ts`
//! module).

mod common;
pub mod engine;

pub mod cfcfs;
pub mod darc;
pub mod dfcfs;
pub mod fixed_priority;
pub mod sjf;

pub use cfcfs::CfcfsEngine;
pub use darc::DarcEngine;
pub use dfcfs::DfcfsEngine;
pub use engine::{Dispatch, EngineReport, ScheduleEngine};
pub use fixed_priority::FixedPriorityEngine;
pub use sjf::SjfEngine;

use crate::policy::Policy;
use crate::profile::ProfilerConfig;
use crate::reserve::Reservation;
use crate::time::Nanos;
use crate::types::TypeId;

/// How a [`DarcEngine`] schedules.
#[derive(Clone, Debug)]
pub enum EngineMode {
    /// Full DARC: c-FCFS warm-up, then profiled dynamic reservations.
    Dynamic,
    /// A fixed, caller-provided reservation ("DARC-static", paper §5.3);
    /// the profiler observes but never updates.
    Static(Reservation),
}

/// Clamp for SLO-derived typed-queue capacities.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SloQueueBounds {
    /// Smallest capacity ever installed (also used when a type has no
    /// service estimate or no guaranteed cores yet).
    pub min: usize,
    /// Largest capacity ever installed.
    pub max: usize,
}

impl Default for SloQueueBounds {
    fn default() -> Self {
        SloQueueBounds {
            min: 8,
            max: 65_536,
        }
    }
}

/// Overload-control knobs (deadline shedding, SLO-sized queues, worker
/// quarantine). Everything defaults to *off* so a plain engine behaves
/// exactly as before; [`OverloadConfig::enabled`] switches the full set on
/// with paper-consistent defaults.
#[derive(Clone, Copy, Debug)]
pub struct OverloadConfig {
    /// Deadline shedding: expire a head-of-queue request once its queueing
    /// delay exceeds `deadline_slowdown ×` its type's profiled mean service
    /// time (the slowdown-SLO deadline). `None` disables shedding.
    pub deadline_slowdown: Option<f64>,
    /// SLO-sized typed queues: on every reservation install, rebound each
    /// typed queue at `slowdown_slo × guaranteed_cores` entries (clamped to
    /// the bounds) so a queue never holds more than ~SLO worth of work.
    /// `None` keeps the static `queue_capacity`. (DARC only: other engines
    /// have no reservations to size against.)
    pub slo_queues: Option<SloQueueBounds>,
    /// Worker quarantine: a busy worker whose in-flight request has run for
    /// `stall_factor ×` its type's profiled mean is quarantined until its
    /// late completion arrives. `None` disables health checks.
    pub stall_factor: Option<f64>,
    /// Floor for the stall threshold; also the full threshold for types
    /// without a service estimate (UNKNOWN included).
    pub min_stall: Nanos,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            deadline_slowdown: None,
            slo_queues: None,
            stall_factor: None,
            min_stall: Nanos::from_millis(1),
        }
    }
}

impl OverloadConfig {
    /// All three mechanisms on: 10× slowdown-SLO deadlines (paper §4.3.3's
    /// SLO), SLO-sized queues with default bounds, and quarantine at 10×
    /// the profiled mean (floored at 1 ms).
    pub fn enabled() -> Self {
        OverloadConfig {
            deadline_slowdown: Some(10.0),
            slo_queues: Some(SloQueueBounds::default()),
            stall_factor: Some(10.0),
            min_stall: Nanos::from_millis(1),
        }
    }
}

/// Reservation tuning (δ, spillway count) for [`EngineConfig`].
///
/// Unlike [`crate::reserve::ReserveConfig`], this carries *no* worker
/// count: the engine derives it from [`EngineConfig::num_workers`] when it
/// builds its internal `ReserveConfig`, so the two can never disagree
/// (callers used to have to patch both fields by hand — a
/// silent-misconfiguration footgun).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReserveTuning {
    /// Similarity factor `δ`: a type joins a group when its mean service
    /// time is at most `δ ×` the group's first (shortest) member.
    pub delta: f64,
    /// Number of spillway cores (clamped to the worker count when the
    /// engine is built; paper: 1).
    pub spillway: usize,
}

impl Default for ReserveTuning {
    /// The paper's defaults: `δ = 2`, one spillway core.
    fn default() -> Self {
        ReserveTuning {
            delta: 2.0,
            spillway: 1,
        }
    }
}

impl ReserveTuning {
    /// Sets the grouping factor `δ`.
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Sets the number of spillway cores.
    pub fn with_spillway(mut self, spillway: usize) -> Self {
        self.spillway = spillway;
        self
    }
}

/// Engine construction parameters, shared by every engine.
///
/// DARC-specific fields (`reserve`, `mode`) are ignored by the baseline
/// engines; the profiler, queue capacity, and overload knobs apply to all.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Number of application workers — the single source of truth; the
    /// reservation algorithm's copy is derived from it.
    pub num_workers: usize,
    /// Reservation tuning (δ, spillway count; [`DarcEngine`] only).
    pub reserve: ReserveTuning,
    /// Profiler parameters (window size, triggers).
    pub profiler: ProfilerConfig,
    /// Per-queue capacity; `0` = unbounded.
    pub queue_capacity: usize,
    /// Scheduling mode ([`DarcEngine`] only).
    pub mode: EngineMode,
    /// Overload-control knobs (all off by default).
    pub overload: OverloadConfig,
}

impl EngineConfig {
    /// A dynamic-DARC config with paper defaults for `num_workers` workers.
    pub fn darc(num_workers: usize) -> Self {
        EngineConfig {
            num_workers,
            reserve: ReserveTuning::default(),
            profiler: ProfilerConfig::default(),
            queue_capacity: 0,
            mode: EngineMode::Dynamic,
            overload: OverloadConfig::default(),
        }
    }
}

/// Builds the engine for `policy` as a boxed trait object.
///
/// This is the configuration-time entry point (`Policy` → engine); hot
/// loops that want monomorphized dispatch construct the concrete engine
/// type directly, as `ServerBuilder::policy` does in the runtime.
///
/// `cfg.mode` is overridden to match the policy where relevant:
/// [`Policy::DarcStatic`] builds the §5.3 two-class reservation from the
/// hints; [`Policy::Darc`] honours whatever mode the caller configured.
///
/// # Panics
///
/// Panics for [`Policy::TimeSharing`] (preemptive, therefore sim-only —
/// see the policy matrix in DESIGN.md), and for [`Policy::DarcStatic`]
/// without any service-time hint (the shortest type is undefined).
pub fn build_engine<R: Send + 'static>(
    policy: &Policy,
    cfg: EngineConfig,
    num_types: usize,
    hints: &[Option<Nanos>],
) -> Box<dyn ScheduleEngine<R>> {
    match policy {
        Policy::Darc => Box::new(DarcEngine::new(cfg, num_types, hints)),
        Policy::DarcStatic { reserved_short } => {
            let short = hints
                .iter()
                .enumerate()
                .filter_map(|(i, h)| h.map(|n| (n, i)))
                .min()
                .map(|(_, i)| i)
                .expect("Policy::DarcStatic needs service-time hints to find the shortest type");
            let res = Reservation::two_class_static(
                num_types,
                cfg.num_workers,
                TypeId::new(short as u32),
                *reserved_short,
            );
            let cfg = EngineConfig {
                mode: EngineMode::Static(res),
                ..cfg
            };
            Box::new(DarcEngine::new(cfg, num_types, hints))
        }
        Policy::CFcfs => Box::new(CfcfsEngine::new(cfg, num_types, hints)),
        Policy::Sjf => Box::new(SjfEngine::new(cfg, num_types, hints)),
        Policy::FixedPriority => Box::new(FixedPriorityEngine::new(cfg, num_types, hints)),
        Policy::DFcfs => Box::new(DfcfsEngine::new(cfg, num_types, hints)),
        Policy::TimeSharing(_) => panic!(
            "Policy::TimeSharing is preemptive and therefore simulator-only; \
             the threaded runtime runs requests to completion (see the \
             policy matrix in DESIGN.md)"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_engine_maps_policies_to_their_engines() {
        let hints = [Some(Nanos::from_micros(1)), Some(Nanos::from_micros(100))];
        let cases = [
            (Policy::Darc, "DARC"),
            (Policy::DarcStatic { reserved_short: 1 }, "DARC"),
            (Policy::CFcfs, "c-FCFS"),
            (Policy::Sjf, "SJF"),
            (Policy::FixedPriority, "FP"),
            (Policy::DFcfs, "d-FCFS"),
        ];
        for (policy, name) in cases {
            let eng: Box<dyn ScheduleEngine<u64>> =
                build_engine(&policy, EngineConfig::darc(4), 2, &hints);
            assert_eq!(eng.policy_name(), name, "policy {policy:?}");
            assert_eq!(eng.num_workers(), 4);
            assert_eq!(eng.num_types(), 2);
        }
    }

    #[test]
    fn built_engines_schedule_through_the_trait() {
        let hints = [Some(Nanos::from_micros(1)), Some(Nanos::from_micros(100))];
        for policy in [
            Policy::Darc,
            Policy::CFcfs,
            Policy::Sjf,
            Policy::FixedPriority,
            Policy::DFcfs,
        ] {
            let mut eng: Box<dyn ScheduleEngine<u64>> =
                build_engine(&policy, EngineConfig::darc(2), 2, &hints);
            let now = Nanos::from_micros(1);
            eng.enqueue(TypeId::new(0), 7, now).unwrap();
            let d = eng
                .poll(now)
                .unwrap_or_else(|| panic!("{} must place onto an idle pool", eng.policy_name()));
            assert_eq!(d.req, 7);
            eng.complete(d.worker, Nanos::from_micros(1), now + Nanos::from_micros(1));
            assert_eq!(eng.free_workers(), 2);
            assert_eq!(eng.total_pending(), 0);
            let report = eng.report();
            assert_eq!(report.policy, eng.policy_name());
            assert_eq!(report.guaranteed.len(), 2);
        }
    }

    #[test]
    #[should_panic(expected = "simulator-only")]
    fn time_sharing_cannot_build_a_live_engine() {
        use crate::policy::TimeSharingParams;
        let _ = build_engine::<u64>(
            &Policy::TimeSharing(TimeSharingParams::shinjuku_fig1()),
            EngineConfig::darc(2),
            2,
            &[None, None],
        );
    }
}
