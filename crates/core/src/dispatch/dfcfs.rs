//! Decentralized first-come-first-served (paper Table 1's d-FCFS).
//!
//! Each worker owns a private FIFO queue; arrivals are steered to a
//! uniformly random worker at enqueue time, modelling RSS-style NIC
//! steering with no centralized dispatch decision at all. A request
//! committed to a busy worker waits there even while other workers idle —
//! the dispersion-based baseline whose tail the paper's Figure 1 opens
//! with.
//!
//! The engine carries its own tiny deterministic RNG (splitmix64) so runs
//! are reproducible and `persephone-core` stays dependency-free; seed it
//! via [`DfcfsEngine::with_seed`].

use std::sync::Arc;

use persephone_telemetry::{DispatchKind, Telemetry};

use super::common::{tslot, WorkerTable};
use super::engine::{Dispatch, EngineReport, ScheduleEngine};
use super::EngineConfig;
use crate::arena::ArenaRing;
use crate::profile::Profiler;
use crate::time::Nanos;
use crate::types::{TypeId, WorkerId};

struct Entry<R> {
    ty: TypeId,
    req: R,
    enqueued: Nanos,
}

/// Deterministic splitmix64 stream for steering decisions.
#[derive(Clone, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)` via the multiply-shift reduction.
    fn next_below(&mut self, n: u64) -> u64 {
        ((self.next() as u128 * n as u128) >> 64) as u64
    }
}

/// Decentralized FCFS with random per-worker steering.
pub struct DfcfsEngine<R> {
    /// One private FIFO per worker.
    queues: Vec<ArenaRing<Entry<R>>>,
    /// Per-queue capacity (`0` = unbounded).
    capacity: usize,
    rng: SplitMix64,
    workers: WorkerTable,
    profiler: Profiler,
    stall_factor: Option<f64>,
    min_stall: Nanos,
    /// Per telemetry slot (`num_types` = UNKNOWN): queued entries, drops.
    pending: Vec<usize>,
    drops: Vec<u64>,
    expired_total: u64,
    num_types: usize,
    telemetry: Option<Arc<Telemetry>>,
}

impl<R> DfcfsEngine<R> {
    /// Creates a d-FCFS engine for `num_types` request types with the
    /// default steering seed.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.num_workers == 0` or `hints.len() != num_types`.
    pub fn new(cfg: EngineConfig, num_types: usize, hints: &[Option<Nanos>]) -> Self {
        assert!(cfg.num_workers > 0, "need at least one worker");
        DfcfsEngine {
            queues: (0..cfg.num_workers).map(|_| ArenaRing::new()).collect(),
            capacity: cfg.queue_capacity,
            rng: SplitMix64(0xD15_EA5E),
            workers: WorkerTable::new(cfg.num_workers),
            profiler: Profiler::new(cfg.profiler, num_types, hints),
            stall_factor: cfg.overload.stall_factor,
            min_stall: cfg.overload.min_stall,
            pending: vec![0; num_types + 1],
            drops: vec![0; num_types + 1],
            expired_total: 0,
            num_types,
            telemetry: None,
        }
    }

    /// Reseeds the steering RNG (for reproducible experiments).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = SplitMix64(seed);
        self
    }

    /// The workload profiler (read-only view).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }
}

impl<R: Send> ScheduleEngine<R> for DfcfsEngine<R> {
    fn policy_name(&self) -> &'static str {
        "d-FCFS"
    }

    fn num_workers(&self) -> usize {
        self.workers.len()
    }

    fn num_types(&self) -> usize {
        self.num_types
    }

    fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = Some(telemetry);
    }

    fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    fn enqueue(&mut self, ty: TypeId, req: R, now: Nanos) -> Result<(), R> {
        self.profiler.record_arrival(ty);
        let slot = tslot(ty, self.num_types);
        if let Some(t) = &self.telemetry {
            t.record_arrival(slot);
        }
        // The steering decision is made at arrival and never revisited —
        // that commitment is the whole policy.
        let w = self.rng.next_below(self.queues.len() as u64) as usize;
        if self.capacity != 0 && self.queues[w].len() >= self.capacity {
            self.drops[slot] += 1;
            if let Some(t) = &self.telemetry {
                t.record_drop(slot, self.queues[w].len() as u64, now.as_nanos());
            }
            return Err(req);
        }
        self.queues[w].push_back(Entry {
            ty,
            req,
            enqueued: now,
        });
        self.pending[slot] += 1;
        if let Some(t) = &self.telemetry {
            t.record_queue_depth(slot, self.queues[w].len() as u64);
        }
        Ok(())
    }

    fn poll(&mut self, now: Nanos) -> Option<Dispatch<R>> {
        if self.workers.free_count() == 0 {
            return None;
        }
        let w = (0..self.queues.len()).find(|&w| {
            self.workers.is_free(w) && !self.workers.is_quarantined(w) && !self.queues[w].is_empty()
        })?;
        let entry = self.queues[w].pop_front()?;
        self.pending[tslot(entry.ty, self.num_types)] -= 1;
        let worker = WorkerId::new(w as u32);
        let queued_for = now.saturating_sub(entry.enqueued);
        self.workers.assign(worker, entry.ty, queued_for, now);
        self.profiler.record_dispatch_delay(entry.ty, queued_for);
        if let Some(t) = &self.telemetry {
            t.record_dispatch(
                tslot(entry.ty, self.num_types),
                w,
                DispatchKind::Fcfs,
                now.as_nanos(),
            );
        }
        Some(Dispatch {
            worker,
            ty: entry.ty,
            req: entry.req,
            queued_for,
            kind: DispatchKind::Fcfs,
        })
    }

    fn complete(&mut self, worker: WorkerId, service: Nanos, now: Nanos) {
        let (ty, queued_for, started, released) = self.workers.complete(worker);
        if released {
            if let Some(t) = &self.telemetry {
                t.record_release(
                    worker.index(),
                    now.saturating_sub(started).as_nanos(),
                    now.as_nanos(),
                );
            }
        }
        self.profiler.record_completion(ty, service);
        if let Some(t) = &self.telemetry {
            let sojourn = queued_for.saturating_add(service);
            t.record_completion(
                tslot(ty, self.num_types),
                worker.index(),
                sojourn.as_nanos(),
                service.as_nanos(),
            );
        }
        if self.profiler.window_full() {
            self.profiler.commit_window_quiet();
        }
    }

    fn expire_heads(&mut self, _now: Nanos) {
        // A d-FCFS request is already committed to its worker; there is no
        // dispatcher-side queue whose head could meaningfully be shed.
    }

    fn take_expired(&mut self) -> Option<(TypeId, R)> {
        None
    }

    fn check_health(&mut self, now: Nanos) {
        let Some(factor) = self.stall_factor else {
            return;
        };
        let profiler = &self.profiler;
        let telemetry = &self.telemetry;
        let num_types = self.num_types;
        self.workers.check_health(
            now,
            factor,
            self.min_stall,
            |ty| profiler.estimate_ns(ty),
            |w, ty, running| {
                if let Some(t) = telemetry {
                    t.record_quarantine(
                        w,
                        tslot(ty, num_types),
                        running.as_nanos(),
                        now.as_nanos(),
                    );
                }
            },
        );
    }

    fn is_quarantined(&self, worker: WorkerId) -> bool {
        self.workers.is_quarantined(worker.index())
    }

    fn drain_all(&mut self, now: Nanos, out: &mut Vec<(TypeId, R)>) {
        for w in 0..self.queues.len() {
            while let Some(e) = self.queues[w].pop_front() {
                let waited = now.saturating_sub(e.enqueued);
                self.pending[tslot(e.ty, self.num_types)] -= 1;
                self.expired_total += 1;
                if let Some(t) = &self.telemetry {
                    t.record_expired(
                        tslot(e.ty, self.num_types),
                        waited.as_nanos(),
                        now.as_nanos(),
                    );
                }
                out.push((e.ty, e.req));
            }
        }
    }

    fn quiescent(&self) -> bool {
        self.workers.quiescent()
    }

    fn free_workers(&self) -> usize {
        self.workers.free_count()
    }

    fn pending(&self, ty: TypeId) -> usize {
        self.pending[tslot(ty, self.num_types)]
    }

    fn total_pending(&self) -> usize {
        self.pending.iter().sum()
    }

    fn drops(&self, ty: TypeId) -> u64 {
        self.drops[tslot(ty, self.num_types)]
    }

    fn total_drops(&self) -> u64 {
        self.drops.iter().sum()
    }

    fn report(&self) -> EngineReport {
        EngineReport {
            policy: "d-FCFS",
            updates: 0,
            quarantines: self.workers.quarantines(),
            releases: self.workers.releases(),
            expired: self.expired_total,
            guaranteed: vec![0; self.num_types],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micros(n: u64) -> Nanos {
        Nanos::from_micros(n)
    }

    fn engine(workers: usize, seed: u64) -> DfcfsEngine<u32> {
        DfcfsEngine::new(EngineConfig::darc(workers), 2, &[None, None]).with_seed(seed)
    }

    #[test]
    fn steering_is_deterministic_per_seed() {
        let drive = |seed: u64| -> Vec<(u32, u32)> {
            let mut eng = engine(4, seed);
            let mut placements = Vec::new();
            for i in 0..16 {
                eng.enqueue(TypeId::new(0), i, micros(i as u64)).unwrap();
            }
            // Complete after each dispatch so every committed entry drains
            // and the full request→worker assignment is observable.
            while let Some(d) = eng.poll(micros(20)) {
                placements.push((d.req, d.worker.index() as u32));
                eng.complete(d.worker, micros(1), micros(21));
            }
            placements
        };
        assert_eq!(drive(7), drive(7));
        assert_ne!(drive(7), drive(8), "different seeds steer differently");
    }

    #[test]
    fn committed_request_waits_for_its_worker() {
        let mut eng = engine(2, 1);
        // Steer enough arrivals that some worker queue holds ≥ 2 entries.
        for i in 0..8 {
            eng.enqueue(TypeId::new(0), i, micros(0)).unwrap();
        }
        // Dispatch one per worker: both busy now.
        let d0 = eng.poll(micros(1)).unwrap();
        let d1 = eng.poll(micros(1)).unwrap();
        assert_ne!(d0.worker, d1.worker);
        assert!(eng.poll(micros(1)).is_none(), "remaining work is committed");
        // Freeing one worker releases only that worker's queue head.
        eng.complete(d0.worker, micros(1), micros(2));
        let d2 = eng.poll(micros(2)).unwrap();
        assert_eq!(d2.worker, d0.worker);
    }

    #[test]
    fn per_worker_flow_control() {
        let mut cfg = EngineConfig::darc(2);
        cfg.queue_capacity = 1;
        let mut eng: DfcfsEngine<u32> = DfcfsEngine::new(cfg, 2, &[None, None]).with_seed(3);
        let mut dropped = 0;
        for i in 0..32 {
            if eng.enqueue(TypeId::new(0), i, micros(0)).is_err() {
                dropped += 1;
            }
        }
        assert!(dropped > 0, "bounded per-worker queues must shed");
        assert_eq!(eng.total_drops(), dropped);
        assert_eq!(eng.total_pending(), 2, "one entry per worker queue");
    }

    #[test]
    fn drains_and_reports() {
        let mut eng = engine(2, 5);
        for i in 0..6 {
            eng.enqueue(TypeId::new(i % 2), i, micros(0)).unwrap();
        }
        let n = eng.total_pending();
        let mut drained = Vec::new();
        eng.drain_all(micros(1), &mut drained);
        assert_eq!(drained.len(), n);
        assert_eq!(eng.total_pending(), 0);
        let r = eng.report();
        assert_eq!(r.policy, "d-FCFS");
        assert_eq!(r.expired, n as u64);
    }
}
