//! Fixed-priority scheduling (paper Table 1's FP).
//!
//! Typed queues served in a strict priority order fixed at construction:
//! ascending hinted mean service time, so shorter types always dispatch
//! before longer ones. Work conserving — any free worker takes the
//! highest-priority head — which is exactly why FP starves long requests
//! under short-heavy load (the contrast DARC's reservations exist to fix).
//! Unhinted types sort after hinted ones (by index); UNKNOWN runs last.
//!
//! Unlike [`super::SjfEngine`], the order never adapts: FP is the static
//! operator-configured policy of the taxonomy.

use std::sync::Arc;

use persephone_telemetry::{DispatchKind, Telemetry};

use super::common::{tslot, WorkerTable};
use super::engine::{Dispatch, EngineReport, ScheduleEngine};
use super::EngineConfig;
use crate::arena::ArenaRing;
use crate::profile::Profiler;
use crate::queue::TypedQueue;
use crate::time::Nanos;
use crate::types::{TypeId, WorkerId};

/// Strict fixed-priority over hinted type service times.
pub struct FixedPriorityEngine<R> {
    queues: Vec<TypedQueue<R>>,
    unknown: TypedQueue<R>,
    seq: u64,
    /// Queue indices in dispatch order (highest priority first).
    order: Vec<usize>,
    workers: WorkerTable,
    profiler: Profiler,
    deadline_slowdown: Option<f64>,
    stall_factor: Option<f64>,
    min_stall: Nanos,
    expired_buf: ArenaRing<(TypeId, R)>,
    expired_total: u64,
    num_types: usize,
    telemetry: Option<Arc<Telemetry>>,
}

impl<R> FixedPriorityEngine<R> {
    /// Creates an FP engine whose priority order is the ascending sort of
    /// `hints` (unhinted types last, then by index).
    ///
    /// # Panics
    ///
    /// Panics if `cfg.num_workers == 0` or `hints.len() != num_types`.
    pub fn new(cfg: EngineConfig, num_types: usize, hints: &[Option<Nanos>]) -> Self {
        assert!(cfg.num_workers > 0, "need at least one worker");
        let mut order: Vec<usize> = (0..num_types).collect();
        order.sort_by_key(|&i| (hints[i].is_none(), hints[i], i));
        FixedPriorityEngine {
            queues: (0..num_types)
                .map(|_| TypedQueue::new(cfg.queue_capacity))
                .collect(),
            unknown: TypedQueue::new(cfg.queue_capacity),
            seq: 0,
            order,
            workers: WorkerTable::new(cfg.num_workers),
            profiler: Profiler::new(cfg.profiler, num_types, hints),
            deadline_slowdown: cfg.overload.deadline_slowdown,
            stall_factor: cfg.overload.stall_factor,
            min_stall: cfg.overload.min_stall,
            expired_buf: ArenaRing::new(),
            expired_total: 0,
            num_types,
            telemetry: None,
        }
    }

    /// The fixed dispatch order (queue indices, highest priority first).
    pub fn priority_order(&self) -> &[usize] {
        &self.order
    }

    /// The workload profiler (read-only view).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }
}

impl<R: Send> ScheduleEngine<R> for FixedPriorityEngine<R> {
    fn policy_name(&self) -> &'static str {
        "FP"
    }

    fn num_workers(&self) -> usize {
        self.workers.len()
    }

    fn num_types(&self) -> usize {
        self.num_types
    }

    fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = Some(telemetry);
    }

    fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    fn enqueue(&mut self, ty: TypeId, req: R, now: Nanos) -> Result<(), R> {
        self.profiler.record_arrival(ty);
        let seq = self.seq;
        self.seq += 1;
        let slot = tslot(ty, self.num_types);
        let q = if !ty.is_unknown() && ty.index() < self.queues.len() {
            &mut self.queues[ty.index()]
        } else {
            &mut self.unknown
        };
        let depth_if_full = q.len() as u64;
        let result = q.push(req, now, seq);
        if let Some(t) = &self.telemetry {
            t.record_arrival(slot);
            match &result {
                Ok(()) => t.record_queue_depth(slot, depth_if_full + 1),
                Err(_) => t.record_drop(slot, depth_if_full, now.as_nanos()),
            }
        }
        result
    }

    fn poll(&mut self, now: Nanos) -> Option<Dispatch<R>> {
        if self.workers.free_count() == 0 {
            return None;
        }
        let qi = self
            .order
            .iter()
            .copied()
            .find(|&i| !self.queues[i].is_empty())
            .or_else(|| (!self.unknown.is_empty()).then_some(self.num_types))?;
        let worker = self.workers.first_free()?;
        let (ty, entry) = if qi == self.num_types {
            (TypeId::UNKNOWN, self.unknown.pop()?)
        } else {
            (TypeId::new(qi as u32), self.queues[qi].pop()?)
        };
        let queued_for = now.saturating_sub(entry.enqueued);
        self.workers.assign(worker, ty, queued_for, now);
        self.profiler.record_dispatch_delay(ty, queued_for);
        if let Some(t) = &self.telemetry {
            t.record_dispatch(
                tslot(ty, self.num_types),
                worker.index(),
                DispatchKind::Fcfs,
                now.as_nanos(),
            );
        }
        Some(Dispatch {
            worker,
            ty,
            req: entry.req,
            queued_for,
            kind: DispatchKind::Fcfs,
        })
    }

    fn complete(&mut self, worker: WorkerId, service: Nanos, now: Nanos) {
        let (ty, queued_for, started, released) = self.workers.complete(worker);
        if released {
            if let Some(t) = &self.telemetry {
                t.record_release(
                    worker.index(),
                    now.saturating_sub(started).as_nanos(),
                    now.as_nanos(),
                );
            }
        }
        self.profiler.record_completion(ty, service);
        if let Some(t) = &self.telemetry {
            let sojourn = queued_for.saturating_add(service);
            t.record_completion(
                tslot(ty, self.num_types),
                worker.index(),
                sojourn.as_nanos(),
                service.as_nanos(),
            );
        }
        if self.profiler.window_full() {
            self.profiler.commit_window_quiet();
        }
    }

    fn expire_heads(&mut self, now: Nanos) {
        let Some(slowdown) = self.deadline_slowdown else {
            return;
        };
        for i in 0..self.num_types {
            let ty = TypeId::new(i as u32);
            let Some(est) = self.profiler.estimate_ns(ty) else {
                continue;
            };
            let deadline = Nanos::from_nanos((slowdown * est) as u64);
            while let Some(entry) = self.queues[i].pop_expired(now, deadline) {
                let waited = now.saturating_sub(entry.enqueued);
                self.expired_total += 1;
                if let Some(t) = &self.telemetry {
                    t.record_expired(i, waited.as_nanos(), now.as_nanos());
                }
                self.expired_buf.push_back((ty, entry.req));
            }
        }
    }

    fn take_expired(&mut self) -> Option<(TypeId, R)> {
        self.expired_buf.pop_front()
    }

    fn check_health(&mut self, now: Nanos) {
        let Some(factor) = self.stall_factor else {
            return;
        };
        let profiler = &self.profiler;
        let telemetry = &self.telemetry;
        let num_types = self.num_types;
        self.workers.check_health(
            now,
            factor,
            self.min_stall,
            |ty| profiler.estimate_ns(ty),
            |w, ty, running| {
                if let Some(t) = telemetry {
                    t.record_quarantine(
                        w,
                        tslot(ty, num_types),
                        running.as_nanos(),
                        now.as_nanos(),
                    );
                }
            },
        );
    }

    fn is_quarantined(&self, worker: WorkerId) -> bool {
        self.workers.is_quarantined(worker.index())
    }

    fn drain_all(&mut self, now: Nanos, out: &mut Vec<(TypeId, R)>) {
        let before = out.len();
        for i in 0..self.num_types {
            let ty = TypeId::new(i as u32);
            for e in self.queues[i].drain() {
                let waited = now.saturating_sub(e.enqueued);
                if let Some(t) = &self.telemetry {
                    t.record_expired(i, waited.as_nanos(), now.as_nanos());
                }
                out.push((ty, e.req));
            }
        }
        for e in self.unknown.drain() {
            let waited = now.saturating_sub(e.enqueued);
            if let Some(t) = &self.telemetry {
                t.record_expired(self.num_types, waited.as_nanos(), now.as_nanos());
            }
            out.push((TypeId::UNKNOWN, e.req));
        }
        self.expired_total += (out.len() - before) as u64;
    }

    fn quiescent(&self) -> bool {
        self.workers.quiescent()
    }

    fn free_workers(&self) -> usize {
        self.workers.free_count()
    }

    fn pending(&self, ty: TypeId) -> usize {
        if ty.is_unknown() {
            self.unknown.len()
        } else {
            self.queues.get(ty.index()).map(|q| q.len()).unwrap_or(0)
        }
    }

    fn total_pending(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum::<usize>() + self.unknown.len()
    }

    fn drops(&self, ty: TypeId) -> u64 {
        if ty.is_unknown() {
            self.unknown.drops()
        } else {
            self.queues.get(ty.index()).map(|q| q.drops()).unwrap_or(0)
        }
    }

    fn total_drops(&self) -> u64 {
        self.queues.iter().map(|q| q.drops()).sum::<u64>() + self.unknown.drops()
    }

    fn report(&self) -> EngineReport {
        EngineReport {
            policy: "FP",
            updates: 0,
            quarantines: self.workers.quarantines(),
            releases: self.workers.releases(),
            expired: self.expired_total,
            guaranteed: vec![0; self.num_types],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micros(n: u64) -> Nanos {
        Nanos::from_micros(n)
    }

    #[test]
    fn priority_order_sorts_by_hint_ascending() {
        let hints = [Some(micros(50)), Some(micros(1)), None, Some(micros(100))];
        let eng: FixedPriorityEngine<u32> =
            FixedPriorityEngine::new(EngineConfig::darc(2), 4, &hints);
        assert_eq!(eng.priority_order(), &[1, 0, 3, 2]);
    }

    #[test]
    fn shorts_always_beat_longs() {
        let hints = [Some(micros(1)), Some(micros(100))];
        let mut eng: FixedPriorityEngine<u32> =
            FixedPriorityEngine::new(EngineConfig::darc(1), 2, &hints);
        eng.enqueue(TypeId::new(1), 10, micros(0)).unwrap();
        eng.enqueue(TypeId::new(0), 20, micros(1)).unwrap();
        eng.enqueue(TypeId::new(0), 21, micros(2)).unwrap();
        let d = eng.poll(micros(3)).unwrap();
        assert_eq!(d.req, 20, "short queue drains first, FIFO within it");
        eng.complete(d.worker, micros(1), micros(4));
        assert_eq!(eng.poll(micros(4)).unwrap().req, 21);
        eng.complete(WorkerId::new(0), micros(1), micros(5));
        assert_eq!(eng.poll(micros(5)).unwrap().req, 10);
    }

    #[test]
    fn work_conserving_across_all_workers() {
        let hints = [Some(micros(1)), Some(micros(100))];
        let mut eng: FixedPriorityEngine<u32> =
            FixedPriorityEngine::new(EngineConfig::darc(4), 2, &hints);
        // Unlike DARC, longs may occupy every worker: no reservations.
        for i in 0..4 {
            eng.enqueue(TypeId::new(1), i, micros(0)).unwrap();
        }
        let mut dispatched = 0;
        while eng.poll(micros(0)).is_some() {
            dispatched += 1;
        }
        assert_eq!(dispatched, 4, "FP is work conserving");
    }

    #[test]
    fn unknown_runs_last() {
        let hints = [Some(micros(1)), Some(micros(100))];
        let mut eng: FixedPriorityEngine<u32> =
            FixedPriorityEngine::new(EngineConfig::darc(1), 2, &hints);
        eng.enqueue(TypeId::UNKNOWN, 1, micros(0)).unwrap();
        eng.enqueue(TypeId::new(1), 2, micros(1)).unwrap();
        let d = eng.poll(micros(2)).unwrap();
        assert_eq!(d.req, 2, "typed work beats UNKNOWN");
        eng.complete(d.worker, micros(100), micros(102));
        let d2 = eng.poll(micros(102)).unwrap();
        assert_eq!((d2.req, d2.ty), (1, TypeId::UNKNOWN));
    }
}
