//! # persephone-core — DARC scheduling
//!
//! This crate implements **DARC** (*Dynamic Application-aware Reserved
//! Cores*), the scheduling policy contributed by the SOSP 2021 paper
//! *"When Idling is Ideal: Optimizing Tail-Latency for Heavy-Tailed
//! Datacenter Workloads with Perséphone"*.
//!
//! DARC minimizes tail latency for microsecond-scale requests with wide
//! service-time dispersion by being deliberately **non work conserving**:
//! it profiles request types online, reserves whole cores for short
//! request types, lets short requests *steal* cycles from cores reserved
//! for longer types (never the reverse), and keeps a *spillway* core so no
//! type is ever denied service.
//!
//! The crate is substrate-agnostic: the same scheduling engines drive
//! both the discrete-event simulator (`persephone-sim`) and the threaded
//! runtime (`persephone-runtime`), behind one
//! [`dispatch::ScheduleEngine`] trait. [`dispatch::DarcEngine`] is the
//! paper's contribution; [`dispatch::CfcfsEngine`],
//! [`dispatch::SjfEngine`], [`dispatch::FixedPriorityEngine`], and
//! [`dispatch::DfcfsEngine`] are the baselines it is evaluated against.
//! [`policy::Policy`] names them all, and [`dispatch::build_engine`] maps
//! a policy onto its engine.
//!
//! ## Module map
//!
//! * [`time`] — integer nanosecond clock type.
//! * [`arena`] — slab FIFO with an intrusive freelist; the zero-alloc
//!   storage layer under every typed queue.
//! * [`rng`] — seeded xoshiro256++ streams shared by the simulator, the
//!   load generator, and the scenario engine.
//! * [`dist`] — service-time distributions sampled identically on both
//!   backends.
//! * [`types`] — request types, workers, type registry.
//! * [`classifier`] — user-defined request classifiers (paper §4.2).
//! * [`profile`] — profiling windows, Eq. 1 demand vector (paper §3).
//! * [`reserve`] — worker reservation, grouping, spillway (Algorithm 2).
//! * [`queue`] — bounded typed queues with drop-based flow control.
//! * [`dispatch`] — the pluggable scheduling engines: the
//!   [`dispatch::ScheduleEngine`] trait, DARC (Algorithm 1), and the
//!   c-FCFS / SJF / FP / d-FCFS baselines.
//! * [`policy`] — the policy taxonomy of the paper's Tables 1 and 5, and
//!   the configuration surface engines are built from.
//!
//! ## Quickstart
//!
//! ```
//! use persephone_core::dispatch::{DarcEngine, EngineConfig};
//! use persephone_core::time::Nanos;
//! use persephone_core::types::TypeId;
//!
//! // A 14-worker server with two request types hinted at 1 µs and 100 µs.
//! let cfg = EngineConfig::darc(14);
//! let hints = [Some(Nanos::from_micros(1)), Some(Nanos::from_micros(100))];
//! let mut engine: DarcEngine<u64> = DarcEngine::new(cfg, 2, &hints);
//!
//! // The short type is guaranteed a core that long requests cannot take.
//! assert_eq!(engine.guaranteed_workers(TypeId::new(0)), 1);
//!
//! // Enqueue, dispatch, complete.
//! let now = Nanos::ZERO;
//! engine.enqueue(TypeId::new(0), 42, now).unwrap();
//! let d = engine.poll(now).unwrap();
//! engine.complete(d.worker, Nanos::from_micros(1), Nanos::from_micros(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod classifier;
pub mod dispatch;
pub mod dist;
pub mod policy;
pub mod profile;
pub mod queue;
pub mod reserve;
pub mod rng;
pub mod time;
pub mod types;

pub use classifier::Classifier;
pub use dispatch::{
    build_engine, CfcfsEngine, DarcEngine, DfcfsEngine, Dispatch, EngineConfig, EngineMode,
    EngineReport, FixedPriorityEngine, OverloadConfig, ReserveTuning, ScheduleEngine, SjfEngine,
    SloQueueBounds,
};
pub use policy::Policy;
pub use profile::{Profiler, ProfilerConfig, TypeStat};
pub use reserve::{reserve, Reservation, ReserveConfig};
pub use time::Nanos;
pub use types::{TypeId, TypeRegistry, TypeSpec, WorkerId};
