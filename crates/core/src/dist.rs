//! Service-time distributions for synthetic workloads.
//!
//! Shared by the simulator's workload generator and the threaded
//! runtime's load generator, so both backends sample *identical*
//! distributions from the same seeded [`Rng`] stream.

use crate::rng::Rng;
use crate::time::Nanos;

/// A service-time distribution for one request type.
///
/// The paper's synthetic workloads use fixed per-type service times
/// ([`Dist::Constant`]); the other shapes support sensitivity studies and
/// richer workload modeling.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Dist {
    /// Every request takes exactly this long.
    Constant(Nanos),
    /// Exponentially distributed with the given mean.
    Exponential(Nanos),
    /// Uniform between the two bounds (inclusive low, exclusive high).
    Uniform(Nanos, Nanos),
    /// Log-normal with the given *linear-space* mean and sigma of the
    /// underlying normal (heavy right tail).
    LogNormal {
        /// Mean of the resulting distribution (linear space).
        mean: Nanos,
        /// Standard deviation of the underlying normal (log space).
        sigma: f64,
    },
}

impl Dist {
    /// Constant distribution from microseconds (convenience for tables).
    pub fn const_micros(us: f64) -> Dist {
        Dist::Constant(Nanos::from_micros_f64(us))
    }

    /// The distribution's mean.
    pub fn mean(&self) -> Nanos {
        match *self {
            Dist::Constant(n) => n,
            Dist::Exponential(m) => m,
            Dist::Uniform(lo, hi) => Nanos::from_nanos((lo.as_nanos() + hi.as_nanos()) / 2),
            Dist::LogNormal { mean, .. } => mean,
        }
    }

    /// Draws a sample; samples are clamped to at least 1 ns so slowdown
    /// ratios stay finite.
    pub fn sample(&self, rng: &mut Rng) -> Nanos {
        let ns = match *self {
            Dist::Constant(n) => return n.max(Nanos::from_nanos(1)),
            Dist::Exponential(m) => rng.next_exp(m.as_nanos() as f64),
            Dist::Uniform(lo, hi) => {
                let (lo, hi) = (lo.as_nanos(), hi.as_nanos());
                if hi <= lo {
                    lo as f64
                } else {
                    lo as f64 + rng.next_f64() * (hi - lo) as f64
                }
            }
            Dist::LogNormal { mean, sigma } => {
                // With underlying N(mu, sigma), the log-normal mean is
                // exp(mu + sigma^2/2); solve mu for the requested mean.
                let mu = (mean.as_nanos() as f64).ln() - sigma * sigma / 2.0;
                (mu + sigma * rng.next_normal()).exp()
            }
        };
        Nanos::from_nanos((ns.max(1.0)) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(d: Dist, n: usize, seed: u64) -> f64 {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| d.sample(&mut rng).as_nanos() as f64)
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let d = Dist::const_micros(5.0);
        let mut rng = Rng::new(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), Nanos::from_micros(5));
        }
        assert_eq!(d.mean(), Nanos::from_micros(5));
    }

    #[test]
    fn constant_zero_clamps_to_one_ns() {
        let d = Dist::Constant(Nanos::ZERO);
        assert_eq!(d.sample(&mut Rng::new(1)), Nanos::from_nanos(1));
    }

    #[test]
    fn exponential_converges_to_mean() {
        let d = Dist::Exponential(Nanos::from_micros(10));
        let m = sample_mean(d, 200_000, 2);
        assert!((m - 10_000.0).abs() < 150.0, "mean = {m}");
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Dist::Uniform(Nanos::from_micros(1), Nanos::from_micros(3));
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!(s >= Nanos::from_micros(1) && s < Nanos::from_micros(3));
        }
        let m = sample_mean(d, 100_000, 4);
        assert!((m - 2_000.0).abs() < 30.0, "mean = {m}");
        assert_eq!(d.mean(), Nanos::from_micros(2));
    }

    #[test]
    fn degenerate_uniform_is_constant() {
        let d = Dist::Uniform(Nanos::from_micros(2), Nanos::from_micros(2));
        assert_eq!(d.sample(&mut Rng::new(5)), Nanos::from_micros(2));
    }

    #[test]
    fn lognormal_mean_converges() {
        let d = Dist::LogNormal {
            mean: Nanos::from_micros(100),
            sigma: 1.0,
        };
        let m = sample_mean(d, 400_000, 6);
        assert!((m - 100_000.0).abs() < 3_000.0, "mean = {m}");
    }

    #[test]
    fn samples_are_never_zero() {
        let dists = [
            Dist::Exponential(Nanos::from_nanos(1)),
            Dist::LogNormal {
                mean: Nanos::from_nanos(2),
                sigma: 2.0,
            },
        ];
        let mut rng = Rng::new(9);
        for d in dists {
            for _ in 0..10_000 {
                assert!(d.sample(&mut rng) >= Nanos::from_nanos(1));
            }
        }
    }
}
