//! Workload profiling: windowed service-time and occurrence tracking.
//!
//! The DARC dispatcher maintains *profiling windows* (paper §3, §4.3.3).
//! Within a window it accumulates, per request type, a running mean of
//! observed service times and an occurrence count. Three signals gate a
//! reservation update:
//!
//! 1. the window holds at least `min_samples` completions (paper: 50 000),
//! 2. the new CPU-demand vector (Eq. 1) deviates from the demand captured
//!    at the last reservation by more than `demand_deviation` (paper: 10 %),
//! 3. some request experienced queueing delay beyond `slowdown_slo` times
//!    its type's profiled service time (paper: 10×).
//!
//! During the very first window the system runs c-FCFS and merely gathers
//! samples ("the system starts using c-FCFS, gathers samples, then
//! transitions to DARC").

use crate::time::Nanos;
use crate::types::TypeId;

/// Tuning knobs for the profiler; defaults follow the paper's §4.3.3.
#[derive(Clone, Debug)]
pub struct ProfilerConfig {
    /// Minimum completions in a window before a reservation update may fire.
    pub min_samples: u64,
    /// Minimum per-type deviation of the demand vector (absolute, in
    /// fraction-of-total-CPU units) before an update fires.
    pub demand_deviation: f64,
    /// Queueing-delay trigger: a dispatch delay above `slowdown_slo × mean
    /// service time` of the request's type raises the delay signal.
    pub slowdown_slo: f64,
    /// Weight of the newest window when blending service-time estimates:
    /// `est ← w·window_mean + (1-w)·est`. `1.0` keeps only the last window.
    pub ewma_weight: f64,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig {
            min_samples: 50_000,
            demand_deviation: 0.10,
            slowdown_slo: 10.0,
            ewma_weight: 0.5,
        }
    }
}

/// One type's profiled statistics, the `(S_i, R_i)` of the paper's Eq. 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TypeStat {
    /// The request type.
    pub ty: TypeId,
    /// Estimated mean service time, nanoseconds.
    pub mean_service_ns: f64,
    /// Occurrence ratio within the workload, in `[0, 1]`.
    pub ratio: f64,
}

impl TypeStat {
    /// The type's contribution `S_i · R_i` to total CPU demand, in ns.
    #[inline]
    pub fn weight(&self) -> f64 {
        self.mean_service_ns * self.ratio
    }
}

#[derive(Clone, Debug, Default)]
struct TypeWindow {
    /// Completions observed in the current window.
    count: u64,
    /// Arrivals observed in the current window (ratios are measured at
    /// arrival: a backed-up type completes less than it arrives, and
    /// completion-based ratios would under-state its demand).
    arrivals: u64,
    /// Sum of service times in the current window, nanoseconds.
    service_sum_ns: u64,
    /// Cross-window service-time estimate (ns); `None` until first data/hint.
    estimate_ns: Option<f64>,
    /// Occurrence ratio committed at the last window boundary.
    committed_ratio: f64,
}

/// Windowed workload profiler driving DARC reservations.
///
/// # Examples
///
/// ```
/// use persephone_core::profile::{Profiler, ProfilerConfig};
/// use persephone_core::time::Nanos;
/// use persephone_core::types::TypeId;
///
/// let cfg = ProfilerConfig { min_samples: 4, ..Default::default() };
/// let mut p = Profiler::new(cfg, 2, &[None, None]);
/// for _ in 0..3 {
///     p.record_completion(TypeId::new(0), Nanos::from_micros(1));
/// }
/// p.record_completion(TypeId::new(1), Nanos::from_micros(100));
/// assert!(p.window_full());
/// let stats = p.estimates();
/// assert_eq!(stats[0].ratio, 0.75);
/// assert_eq!(stats[1].mean_service_ns, 100_000.0);
/// ```
#[derive(Clone, Debug)]
pub struct Profiler {
    cfg: ProfilerConfig,
    types: Vec<TypeWindow>,
    window_samples: u64,
    window_arrivals: u64,
    delay_signal: bool,
    /// Demand vector captured when the current reservation was installed.
    snapshot_demand: Vec<f64>,
    windows_committed: u64,
}

impl Profiler {
    /// Creates a profiler for `num_types` types.
    ///
    /// `hints[i]`, when present, seeds type `i`'s service-time estimate so
    /// reservations can be computed before the first completions arrive.
    ///
    /// # Panics
    ///
    /// Panics if `hints.len() != num_types`.
    pub fn new(cfg: ProfilerConfig, num_types: usize, hints: &[Option<Nanos>]) -> Self {
        assert_eq!(hints.len(), num_types, "one hint slot per type required");
        // Until the first window commits, assume types occur uniformly so
        // that fully-hinted engines can compute a boot-time reservation.
        let uniform_ratio = if num_types > 0 {
            1.0 / num_types as f64
        } else {
            0.0
        };
        let types = hints
            .iter()
            .map(|h| TypeWindow {
                estimate_ns: h.map(|n| n.as_nanos() as f64),
                committed_ratio: uniform_ratio,
                ..Default::default()
            })
            .collect();
        Profiler {
            cfg,
            types,
            window_samples: 0,
            window_arrivals: 0,
            delay_signal: false,
            snapshot_demand: vec![0.0; num_types],
            windows_committed: 0,
        }
    }

    /// Number of request types being profiled.
    pub fn num_types(&self) -> usize {
        self.types.len()
    }

    /// The profiler configuration.
    pub fn config(&self) -> &ProfilerConfig {
        &self.cfg
    }

    /// Records a completed request of type `ty` with measured `service`
    /// time. UNKNOWN completions are ignored (they are not profiled; the
    /// spillway serves them regardless).
    ///
    /// The paper reports this costs ≈75 cycles; it is two integer adds and
    /// a bounds check.
    #[inline]
    pub fn record_completion(&mut self, ty: TypeId, service: Nanos) {
        if ty.is_unknown() {
            return;
        }
        let Some(tw) = self.types.get_mut(ty.index()) else {
            return;
        };
        tw.count += 1;
        tw.service_sum_ns = tw.service_sum_ns.saturating_add(service.as_nanos());
        self.window_samples += 1;
    }

    /// Records the arrival of a request of type `ty` (called by the
    /// dispatcher at enqueue time). Arrival counts drive the occurrence
    /// ratios `R_i`; unlike completion counts they stay unbiased when a
    /// type's queue is backed up. UNKNOWN arrivals are ignored.
    #[inline]
    pub fn record_arrival(&mut self, ty: TypeId) {
        if ty.is_unknown() {
            return;
        }
        let Some(tw) = self.types.get_mut(ty.index()) else {
            return;
        };
        tw.arrivals += 1;
        self.window_arrivals += 1;
    }

    /// Records the queueing delay a request experienced before dispatch,
    /// raising the delay signal when it exceeds the slowdown SLO for the
    /// type. Requests of unprofiled types never raise the signal.
    #[inline]
    pub fn record_dispatch_delay(&mut self, ty: TypeId, delay: Nanos) {
        if self.delay_signal || ty.is_unknown() {
            return;
        }
        let Some(tw) = self.types.get(ty.index()) else {
            return;
        };
        // Division-free form of `delay > slo * (sum / count)`: cross-
        // multiply by `count` so the per-dispatch cost is two f64
        // multiplies instead of a divide (fdiv is the single most
        // expensive ALU op on this path, and this runs on every poll).
        let d = delay.as_nanos() as f64;
        let exceeded = if tw.count > 0 {
            d * tw.count as f64 > self.cfg.slowdown_slo * tw.service_sum_ns as f64
        } else if let Some(est) = tw.estimate_ns {
            d > self.cfg.slowdown_slo * est
        } else {
            false
        };
        if exceeded {
            self.delay_signal = true;
        }
    }

    /// Completions recorded in the current window.
    pub fn window_samples(&self) -> u64 {
        self.window_samples
    }

    /// Whether the current window has reached `min_samples`.
    pub fn window_full(&self) -> bool {
        self.window_samples >= self.cfg.min_samples
    }

    /// Whether the queueing-delay trigger fired in the current window.
    pub fn delay_signalled(&self) -> bool {
        self.delay_signal
    }

    /// Windows committed so far (0 while still in the warm-up window).
    pub fn windows_committed(&self) -> u64 {
        self.windows_committed
    }

    /// Best current service-time estimate for type `ty` in nanoseconds
    /// (window data preferred, falling back to the cross-window estimate /
    /// hint). Returns `None` for UNKNOWN, out-of-range, or never-observed
    /// unhinted types.
    ///
    /// Unlike [`Profiler::estimates`] this does not allocate, so overload
    /// control (deadline shedding, worker-health checks) can consult it on
    /// every dispatcher iteration.
    #[inline]
    pub fn estimate_ns(&self, ty: TypeId) -> Option<f64> {
        if ty.is_unknown() {
            return None;
        }
        let tw = self.types.get(ty.index())?;
        self.current_estimate(tw)
    }

    /// Best current estimate for a type (window data preferred, falling
    /// back to the cross-window estimate / hint).
    fn current_estimate(&self, tw: &TypeWindow) -> Option<f64> {
        if tw.count > 0 {
            Some(tw.service_sum_ns as f64 / tw.count as f64)
        } else {
            tw.estimate_ns
        }
    }

    /// Current per-type statistics (`S_i`, `R_i`), blending the live window
    /// with committed estimates.
    ///
    /// Occurrence ratios come from the live window's *arrivals* when any
    /// were recorded, falling back to live completions (profiler used
    /// stand-alone) and then to the last committed window. Types never
    /// observed (and without hints) report a zero mean and zero ratio; the
    /// reservation logic routes such types to the spillway.
    pub fn estimates(&self) -> Vec<TypeStat> {
        let by_arrivals = self.window_arrivals > 0;
        let total = if by_arrivals {
            self.window_arrivals
        } else {
            self.window_samples
        };
        self.types
            .iter()
            .enumerate()
            .map(|(i, tw)| {
                let observed = if by_arrivals { tw.arrivals } else { tw.count };
                let ratio = if total > 0 {
                    observed as f64 / total as f64
                } else {
                    tw.committed_ratio
                };
                TypeStat {
                    ty: TypeId::new(i as u32),
                    mean_service_ns: self.current_estimate(tw).unwrap_or(0.0),
                    ratio,
                }
            })
            .collect()
    }

    /// Live (uncommitted) `S_i·R_i` weight of type `i`, mirroring one
    /// element of [`Profiler::estimates`] without building the vector.
    fn live_weight_at(&self, i: usize) -> f64 {
        let Some(tw) = self.types.get(i) else {
            return 0.0;
        };
        let by_arrivals = self.window_arrivals > 0;
        let total = if by_arrivals {
            self.window_arrivals
        } else {
            self.window_samples
        };
        let observed = if by_arrivals { tw.arrivals } else { tw.count };
        let ratio = if total > 0 {
            observed as f64 / total as f64
        } else {
            tw.committed_ratio
        };
        self.current_estimate(tw).unwrap_or(0.0) * ratio
    }

    /// The CPU-demand vector of Eq. 1: `Δ_i = S_i·R_i / Σ_j S_j·R_j`.
    ///
    /// Returns all zeros when nothing has been profiled yet.
    pub fn demands(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.types.len());
        self.demands_into(&mut out);
        out
    }

    /// Writes the demand vector of Eq. 1 into `out`. Allocation-free once
    /// `out`'s capacity covers the type set — the hot-path variant of
    /// [`Profiler::demands`] for callers that keep a scratch vector.
    pub fn demands_into(&self, out: &mut Vec<f64>) {
        out.clear();
        let n = self.types.len();
        let total: f64 = (0..n).map(|i| self.live_weight_at(i)).sum();
        if total <= 0.0 {
            // audit:allow(A2): fills a pre-warmed scratch; grows only on first use
            out.resize(n, 0.0);
            return;
        }
        out.extend((0..n).map(|i| self.live_weight_at(i) / total));
    }

    /// Checks whether a reservation update should fire (paper §4.3.3):
    /// window full ∧ delay signal ∧ demand deviated beyond the threshold.
    ///
    /// This is the ≈300-cycle "check" of the paper: it recomputes the
    /// demand vector over the (small) type set and compares.
    pub fn update_ready(&self) -> bool {
        if !self.window_full() || !self.delay_signal {
            return false;
        }
        self.demand_deviated()
    }

    /// Whether the live demand vector deviates from the snapshot taken at
    /// the last reservation by more than the configured threshold.
    ///
    /// Runs on every completion once the window fills, so it folds the
    /// demand vector on the fly instead of materializing it.
    pub fn demand_deviated(&self) -> bool {
        let n = self.types.len();
        let total: f64 = (0..n).map(|i| self.live_weight_at(i)).sum();
        (0..n).any(|i| {
            let d = if total > 0.0 {
                self.live_weight_at(i) / total
            } else {
                0.0
            };
            let snap = self.snapshot_demand.get(i).copied().unwrap_or(0.0);
            (d - snap).abs() > self.cfg.demand_deviation
        })
    }

    /// Commits the current window: folds window means into the cross-window
    /// estimates, snapshots the demand vector (the new reservation base),
    /// and opens a fresh window.
    ///
    /// Returns the committed per-type statistics, suitable for
    /// [`crate::reserve::reserve`].
    pub fn commit_window(&mut self) -> Vec<TypeStat> {
        let mut out = Vec::with_capacity(self.types.len());
        self.commit_window_into(&mut out);
        out
    }

    /// [`Profiler::commit_window`] for engines that discard the returned
    /// statistics: folds and re-snapshots without allocating at all.
    pub fn commit_window_quiet(&mut self) {
        self.fold_window();
        self.resnapshot_demand();
    }

    /// [`Profiler::commit_window`] writing the statistics into `out`.
    /// Allocation-free once `out`'s capacity covers the type set.
    pub fn commit_window_into(&mut self, out: &mut Vec<TypeStat>) {
        self.fold_window();
        self.resnapshot_demand();
        out.clear();
        out.extend(self.types.iter().enumerate().map(|(i, tw)| TypeStat {
            ty: TypeId::new(i as u32),
            mean_service_ns: tw.estimate_ns.unwrap_or(0.0),
            ratio: tw.committed_ratio,
        }));
    }

    /// Recomputes `snapshot_demand` in place. Called right after a fold,
    /// when the live view (zeroed counts, committed ratios/estimates) *is*
    /// the committed view, so this equals `demands_of(&stats)`.
    fn resnapshot_demand(&mut self) {
        let n = self.types.len();
        let total: f64 = (0..n).map(|i| self.live_weight_at(i)).sum();
        for i in 0..n {
            let d = if total > 0.0 {
                self.live_weight_at(i) / total
            } else {
                0.0
            };
            if let Some(s) = self.snapshot_demand.get_mut(i) {
                *s = d;
            }
        }
    }

    /// Folds window means into the cross-window estimates and opens a
    /// fresh window (the mutation half of a commit).
    fn fold_window(&mut self) {
        let by_arrivals = self.window_arrivals > 0;
        let total = if by_arrivals {
            self.window_arrivals
        } else {
            self.window_samples
        };
        let w = self.cfg.ewma_weight.clamp(0.0, 1.0);
        for tw in &mut self.types {
            if tw.count > 0 {
                let mean = tw.service_sum_ns as f64 / tw.count as f64;
                tw.estimate_ns = Some(match tw.estimate_ns {
                    Some(prev) => w * mean + (1.0 - w) * prev,
                    None => mean,
                });
            }
            let observed = if by_arrivals { tw.arrivals } else { tw.count };
            if total > 0 {
                // Ratios get the same EWMA smoothing as service means so a
                // single noisy window cannot flip a rounding boundary.
                let fresh = observed as f64 / total as f64;
                tw.committed_ratio = if self.windows_committed == 0 {
                    fresh
                } else {
                    w * fresh + (1.0 - w) * tw.committed_ratio
                };
            }
            tw.count = 0;
            tw.arrivals = 0;
            tw.service_sum_ns = 0;
        }
        self.window_samples = 0;
        self.window_arrivals = 0;
        self.delay_signal = false;
        self.windows_committed += 1;
    }
}

/// Computes the normalized demand vector of Eq. 1 from raw statistics.
///
/// The result sums to 1 (up to rounding) whenever any type has positive
/// weight, and is all zeros otherwise.
pub fn demands_of(stats: &[TypeStat]) -> Vec<f64> {
    let total: f64 = stats.iter().map(|s| s.weight()).sum();
    if total <= 0.0 {
        return vec![0.0; stats.len()];
    }
    stats.iter().map(|s| s.weight() / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(min: u64) -> ProfilerConfig {
        ProfilerConfig {
            min_samples: min,
            ..Default::default()
        }
    }

    #[test]
    fn records_means_and_ratios() {
        let mut p = Profiler::new(cfg(10), 2, &[None, None]);
        p.record_completion(TypeId::new(0), Nanos::from_nanos(500));
        p.record_completion(TypeId::new(0), Nanos::from_nanos(1_500));
        p.record_completion(TypeId::new(1), Nanos::from_micros(100));
        let s = p.estimates();
        assert_eq!(s[0].mean_service_ns, 1_000.0);
        assert!((s[0].ratio - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s[1].mean_service_ns, 100_000.0);
    }

    #[test]
    fn unknown_and_out_of_range_completions_are_ignored() {
        let mut p = Profiler::new(cfg(10), 1, &[None]);
        p.record_completion(TypeId::UNKNOWN, Nanos::from_micros(1));
        p.record_completion(TypeId::new(9), Nanos::from_micros(1));
        assert_eq!(p.window_samples(), 0);
    }

    #[test]
    fn demand_matches_eq1_extreme_bimodal() {
        // 99.5 % × 0.5 µs + 0.5 % × 500 µs: short demand ≈ 0.166.
        let stats = vec![
            TypeStat {
                ty: TypeId::new(0),
                mean_service_ns: 500.0,
                ratio: 0.995,
            },
            TypeStat {
                ty: TypeId::new(1),
                mean_service_ns: 500_000.0,
                ratio: 0.005,
            },
        ];
        let d = demands_of(&stats);
        assert!((d[0] - 0.16597).abs() < 1e-4, "short demand {d:?}");
        assert!((d[0] + d[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn demands_all_zero_without_data() {
        let p = Profiler::new(cfg(10), 3, &[None, None, None]);
        assert_eq!(p.demands(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn delay_signal_respects_slo() {
        let mut p = Profiler::new(cfg(10), 1, &[Some(Nanos::from_micros(1))]);
        p.record_dispatch_delay(TypeId::new(0), Nanos::from_micros(5));
        assert!(!p.delay_signalled(), "5x delay is under the 10x SLO");
        p.record_dispatch_delay(TypeId::new(0), Nanos::from_micros(11));
        assert!(p.delay_signalled());
    }

    #[test]
    fn delay_signal_needs_an_estimate() {
        let mut p = Profiler::new(cfg(10), 1, &[None]);
        p.record_dispatch_delay(TypeId::new(0), Nanos::from_secs(1));
        assert!(!p.delay_signalled(), "unprofiled types cannot trigger");
    }

    #[test]
    fn update_requires_all_three_triggers() {
        let mut p = Profiler::new(cfg(4), 2, &[None, None]);
        for _ in 0..4 {
            p.record_completion(TypeId::new(0), Nanos::from_micros(1));
        }
        assert!(p.window_full());
        // Demand deviates (snapshot is all zeros) but no delay signal yet.
        assert!(p.demand_deviated());
        assert!(!p.update_ready());
        p.record_dispatch_delay(TypeId::new(0), Nanos::from_micros(100));
        assert!(p.update_ready());
    }

    #[test]
    fn commit_resets_window_and_snapshots_demand() {
        let mut p = Profiler::new(cfg(2), 2, &[None, None]);
        p.record_completion(TypeId::new(0), Nanos::from_micros(1));
        p.record_completion(TypeId::new(1), Nanos::from_micros(100));
        let stats = p.commit_window();
        assert_eq!(p.window_samples(), 0);
        assert_eq!(p.windows_committed(), 1);
        assert_eq!(stats[0].ratio, 0.5);
        // Identical traffic in the next window ⇒ no deviation.
        p.record_completion(TypeId::new(0), Nanos::from_micros(1));
        p.record_completion(TypeId::new(1), Nanos::from_micros(100));
        assert!(!p.demand_deviated());
        // A service-time flip deviates strongly.
        let mut q = p.clone();
        for _ in 0..10 {
            q.record_completion(TypeId::new(0), Nanos::from_micros(100));
            q.record_completion(TypeId::new(1), Nanos::from_micros(1));
        }
        assert!(q.demand_deviated());
    }

    #[test]
    fn ewma_blends_windows() {
        let c = ProfilerConfig {
            min_samples: 1,
            ewma_weight: 0.5,
            ..Default::default()
        };
        let mut p = Profiler::new(c, 1, &[None]);
        p.record_completion(TypeId::new(0), Nanos::from_micros(10));
        p.commit_window();
        p.record_completion(TypeId::new(0), Nanos::from_micros(20));
        let stats = p.commit_window();
        assert_eq!(stats[0].mean_service_ns, 15_000.0);
    }

    #[test]
    fn unseen_type_keeps_committed_ratio_until_new_data() {
        let mut p = Profiler::new(cfg(1), 2, &[None, None]);
        p.record_completion(TypeId::new(0), Nanos::from_micros(1));
        p.record_completion(TypeId::new(1), Nanos::from_micros(1));
        p.commit_window();
        // New window: only type 0 appears; live ratio for type 1 drops to 0.
        p.record_completion(TypeId::new(0), Nanos::from_micros(1));
        let s = p.estimates();
        assert_eq!(s[0].ratio, 1.0);
        assert_eq!(s[1].ratio, 0.0);
    }

    #[test]
    fn estimate_ns_prefers_live_window_and_guards_bounds() {
        let mut p = Profiler::new(cfg(10), 2, &[Some(Nanos::from_micros(7)), None]);
        assert_eq!(p.estimate_ns(TypeId::new(0)), Some(7_000.0));
        assert_eq!(p.estimate_ns(TypeId::new(1)), None, "no hint, no data");
        assert_eq!(p.estimate_ns(TypeId::UNKNOWN), None);
        assert_eq!(p.estimate_ns(TypeId::new(9)), None);
        p.record_completion(TypeId::new(0), Nanos::from_micros(3));
        assert_eq!(p.estimate_ns(TypeId::new(0)), Some(3_000.0));
    }

    #[test]
    fn hints_seed_estimates() {
        let p = Profiler::new(cfg(10), 1, &[Some(Nanos::from_micros(7))]);
        assert_eq!(p.estimates()[0].mean_service_ns, 7_000.0);
    }

    #[test]
    #[should_panic(expected = "one hint slot per type")]
    fn hint_arity_checked() {
        let _ = Profiler::new(cfg(1), 2, &[None]);
    }
}
