//! Arena-backed FIFO ring: one slab, reused in place, with generation
//! tags.
//!
//! [`ArenaRing`] is the storage layer under every typed queue on the
//! dispatch hot path. It replaces `VecDeque`'s grow-by-moving ring
//! buffer with a slab of slots and a *positional* freelist: the live
//! region is `head .. head+len` (mod capacity) and the free region is
//! its complement, so "allocate" and "free" are cursor arithmetic — no
//! per-slot link fields, no dependent pointer loads, and no global
//! allocator once the slab has been warmed to its high-water mark.
//!
//! An earlier revision threaded an intrusive linked freelist through
//! the slots. Microbenchmarks of the dispatch cycle showed the link
//! chasing (a dependent load on every push *and* pop) cost ~1–2 ns per
//! operation versus cursor math, so the freelist became positional: the
//! free/live state still lives inside the slab — a slot is free exactly
//! when it sits outside the live window — but finding the next free
//! slot is an add-and-wrap instead of a pointer dereference. Strict
//! FIFO usage means frees happen in allocation order, which is what
//! makes the positional representation exact.
//!
//! The slab only grows when a push finds no free slot; once the ring
//! has been warmed (see [`ArenaRing::with_slots`] /
//! [`ArenaRing::reserve_slots`]), pushes and pops touch no allocator at
//! all. That property is what the extended `no_alloc` harness pins for
//! the dispatch path.
//!
//! Every slot carries a generation counter bumped each time the slot is
//! freed (and on slab growth, which relocates the live window).
//! [`Handle`]s returned by [`ArenaRing::push_back`] capture
//! `(index, generation)`; a stale handle — one whose slot has been
//! freed, reused, or moved by growth — can never alias the new occupant
//! because [`ArenaRing::get`] checks the generation. The
//! `persephone-check` model test leans on this to prove
//! alloc/free-exactly-once across arbitrary op interleavings.

/// A `(slot index, generation)` pair naming one *allocation* of a slot.
///
/// Two handles with the same index but different generations refer to
/// different lifetimes of the slot; only the latest generation resolves
/// through [`ArenaRing::get`]. Slab growth lifts every slot past all
/// generations issued so far, so
/// handles never survive a relocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Handle {
    /// Slot index inside the arena slab.
    pub index: u32,
    /// Generation of the slot at allocation time.
    pub generation: u32,
}

/// Fixed-capacity-friendly FIFO arena (see module docs).
///
/// The ring itself never refuses a push — bounded-queue semantics
/// (drops, SLO-sized capacities) are policy and live one layer up in
/// `TypedQueue`. What the ring guarantees is *where the bytes live*:
/// one slab, reused in place, with no per-element heap traffic once
/// warm.
///
/// ```
/// use persephone_core::arena::ArenaRing;
///
/// let mut ring: ArenaRing<&str> = ArenaRing::with_slots(2);
/// ring.push_back("a");
/// ring.push_back("b");
/// ring.push_back("c"); // grows the slab once
/// assert_eq!(ring.pop_front(), Some("a"));
/// assert_eq!(ring.front(), Some(&"b"));
/// assert_eq!(ring.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct ArenaRing<T> {
    /// `(occupant, generation)` per slot. A slot is live iff its
    /// position falls inside the `head .. head+len` window; the value is
    /// `Some` exactly for live slots.
    slots: Vec<(Option<T>, u32)>,
    /// Index of the front element (meaningful only when `len > 0`).
    head: u32,
    /// Live elements currently in FIFO order.
    len: u32,
}

impl<T> Default for ArenaRing<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ArenaRing<T> {
    /// Empty ring with no slots; the slab grows on first push.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            head: 0,
            len: 0,
        }
    }

    /// Empty ring pre-warmed with `slots` free slots, so the first
    /// `slots` pushes allocate nothing.
    pub fn with_slots(slots: usize) -> Self {
        let mut ring = Self::new();
        ring.reserve_slots(slots);
        ring
    }

    /// Grows the slab until at least `want` slots exist in total
    /// (live + free). Idempotent once satisfied; this is the warm-up
    /// knob for zero-alloc steady state. Like growth, reaching for more
    /// slots may relocate the live window and so invalidates handles.
    /// Warm-up/growth lane, never per-request — cold keeps the audit's
    /// reachability frontier honest about that.
    #[cold]
    pub fn reserve_slots(&mut self, want: usize) {
        debug_assert!(
            want < u32::MAX as usize,
            "arena slab would overflow u32 indices"
        );
        if self.slots.len() >= want {
            return;
        }
        self.canonicalize();
        self.slots.resize_with(want, || (None, 0));
    }

    /// Live elements currently in FIFO order.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no element is queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots in the slab (live + free): the high-water mark.
    #[inline]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Physical slot index of the `offset`-th live element.
    #[inline]
    fn pos(&self, offset: u32) -> u32 {
        let cap = self.slots.len() as u32;
        let mut idx = self.head + offset;
        if idx >= cap {
            idx -= cap;
        }
        idx
    }

    /// Rotates the slab so the live window starts at slot 0 and lifts
    /// every slot to a common generation *floor* strictly above every
    /// generation issued so far (elements may have moved, so no
    /// pre-existing handle may resolve afterwards). A simple `+1` bump
    /// is not enough: rotation re-associates generation counters with
    /// different slots, so a stale handle whose generation was inflated
    /// by pops on the *old* tenant of its index could later collide
    /// with the relocated slot's counter and alias a different element
    /// (caught by the arena model test). Every outstanding handle's
    /// generation is bounded by the current per-slot maximum, so
    /// `max + 1` retires them all at once. Cold: called only on growth.
    #[cold]
    fn canonicalize(&mut self) {
        if self.head != 0 {
            self.slots.rotate_left(self.head as usize);
            self.head = 0;
        }
        let floor = self
            .slots
            .iter()
            .map(|s| s.1)
            .max()
            .unwrap_or(0)
            .wrapping_add(1);
        for s in self.slots.iter_mut() {
            s.1 = floor;
        }
    }

    /// Slab growth, outlined so the warm-path `push_back` stays small.
    /// Doubles the slab (min 1 slot) after canonicalizing, keeping
    /// growth amortized O(1) per push on a cold ring.
    #[cold]
    #[inline(never)]
    fn grow(&mut self) {
        self.canonicalize();
        let want = (self.slots.len() * 2).max(1);
        debug_assert!(
            want < u32::MAX as usize,
            "arena slab would overflow u32 indices"
        );
        self.slots.resize_with(want, || (None, 0));
    }

    /// Appends `val` at the tail. O(1); allocates only when every slot
    /// is live (slab below high-water mark). The warm path is cursor
    /// arithmetic plus one store — no link fields to maintain.
    #[inline]
    pub fn push_back(&mut self, val: T) -> Handle {
        if self.len as usize == self.slots.len() {
            self.grow();
        }
        let idx = self.pos(self.len);
        let slot = &mut self.slots[idx as usize];
        debug_assert!(slot.0.is_none(), "free region handed out a live slot");
        slot.0 = Some(val);
        let generation = slot.1;
        self.len += 1;
        Handle {
            index: idx,
            generation,
        }
    }

    /// Removes and returns the head element. O(1); the freed slot
    /// rejoins the free region in place with its generation bumped.
    #[inline]
    pub fn pop_front(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let idx = self.head;
        let cap = self.slots.len() as u32;
        let slot = &mut self.slots[idx as usize];
        let val = slot.0.take();
        debug_assert!(val.is_some(), "live window reached an empty slot");
        slot.1 = slot.1.wrapping_add(1);
        let mut h = idx + 1;
        if h >= cap {
            h = 0;
        }
        self.head = h;
        self.len -= 1;
        val
    }

    /// Borrows the head element without removing it.
    #[inline]
    pub fn front(&self) -> Option<&T> {
        if self.len == 0 {
            return None;
        }
        self.slots[self.head as usize].0.as_ref()
    }

    /// Resolves `handle` to its element — `None` once the slot has been
    /// freed (or freed and reused, or relocated by slab growth), because
    /// the generation no longer matches. This is the no-aliasing
    /// guarantee the model test pins.
    pub fn get(&self, handle: Handle) -> Option<&T> {
        let slot = self.slots.get(handle.index as usize)?;
        if slot.1 != handle.generation {
            return None;
        }
        slot.0.as_ref()
    }

    /// Drains every element in FIFO order without building a temporary
    /// `Vec`: each `next()` is one `pop_front`. Dropping the iterator
    /// early still empties the ring.
    pub fn drain(&mut self) -> Drain<'_, T> {
        Drain { ring: self }
    }

    /// Iterates the live elements head→tail without consuming them.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            ring: self,
            offset: 0,
        }
    }

    /// Checks that the live window and the free region partition the
    /// slab exactly: every position inside `head .. head+len` holds a
    /// value, every position outside holds none. Debug/model-test
    /// helper — O(slots), not for the hot path.
    #[cold]
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.slots.len();
        if self.len as usize > n {
            return Err(format!("len {} exceeds {} slots", self.len, n));
        }
        if n > 0 && self.head as usize >= n {
            return Err(format!("head {} out of bounds ({n} slots)", self.head));
        }
        let mut live = vec![false; n];
        for off in 0..self.len {
            live[self.pos(off) as usize] = true;
        }
        for (i, (val, _gen)) in self.slots.iter().enumerate() {
            match (live[i], val.is_some()) {
                (true, false) => return Err(format!("live slot {i} holds no value")),
                (false, true) => return Err(format!("free slot {i} still holds a value")),
                _ => {}
            }
        }
        Ok(())
    }
}

/// Consuming FIFO iterator returned by [`ArenaRing::drain`].
pub struct Drain<'a, T> {
    ring: &'a mut ArenaRing<T>,
}

impl<T> Iterator for Drain<'_, T> {
    type Item = T;

    #[inline]
    fn next(&mut self) -> Option<T> {
        self.ring.pop_front()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.ring.len(), Some(self.ring.len()))
    }
}

impl<T> Drop for Drain<'_, T> {
    fn drop(&mut self) {
        while self.ring.pop_front().is_some() {}
    }
}

/// Borrowing FIFO iterator returned by [`ArenaRing::iter`].
pub struct Iter<'a, T> {
    ring: &'a ArenaRing<T>,
    offset: u32,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;

    #[inline]
    fn next(&mut self) -> Option<&'a T> {
        if self.offset >= self.ring.len {
            return None;
        }
        let idx = self.ring.pos(self.offset);
        self.offset += 1;
        self.ring.slots.get(idx as usize)?.0.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved_across_reuse() {
        let mut ring = ArenaRing::with_slots(2);
        ring.push_back(1);
        ring.push_back(2);
        assert_eq!(ring.pop_front(), Some(1));
        ring.push_back(3); // wraps around, reusing the freed slot
        ring.push_back(4); // grows
        assert_eq!(ring.pop_front(), Some(2));
        assert_eq!(ring.pop_front(), Some(3));
        assert_eq!(ring.pop_front(), Some(4));
        assert_eq!(ring.pop_front(), None);
        ring.check_invariants().unwrap();
    }

    #[test]
    fn no_growth_at_or_below_high_water() {
        let mut ring = ArenaRing::with_slots(4);
        assert_eq!(ring.slot_count(), 4);
        for round in 0..100 {
            for i in 0..4 {
                ring.push_back(round * 4 + i);
            }
            for _ in 0..4 {
                ring.pop_front().unwrap();
            }
        }
        assert_eq!(ring.slot_count(), 4, "warm ring must not grow");
        ring.check_invariants().unwrap();
    }

    #[test]
    fn stale_handle_never_aliases_new_occupant() {
        let mut ring = ArenaRing::with_slots(1);
        let h1 = ring.push_back("first");
        assert_eq!(ring.get(h1), Some(&"first"));
        ring.pop_front();
        assert_eq!(ring.get(h1), None, "freed slot must not resolve");
        let h2 = ring.push_back("second");
        assert_eq!(h1.index, h2.index, "slot should be reused");
        assert_ne!(h1.generation, h2.generation);
        assert_eq!(ring.get(h1), None, "stale generation must not alias");
        assert_eq!(ring.get(h2), Some(&"second"));
    }

    #[test]
    fn growth_invalidates_outstanding_handles() {
        let mut ring = ArenaRing::with_slots(2);
        ring.push_back("a");
        let hb = ring.push_back("b");
        ring.pop_front(); // head = 1, live window wraps after next push
        ring.push_back("c");
        ring.push_back("d"); // forces growth → canonicalize moves "b"
        assert_eq!(ring.get(hb), None, "growth must invalidate handles");
        assert_eq!(
            ring.drain().collect::<Vec<_>>(),
            vec!["b", "c", "d"],
            "FIFO order survives growth"
        );
    }

    #[test]
    fn drain_yields_fifo_and_empties_on_early_drop() {
        let mut ring = ArenaRing::new();
        for i in 0..5 {
            ring.push_back(i);
        }
        let first_two: Vec<i32> = ring.drain().take(2).collect();
        assert_eq!(first_two, vec![0, 1]);
        assert!(ring.is_empty(), "dropping Drain early still empties");
        ring.check_invariants().unwrap();
    }

    #[test]
    fn iter_is_non_destructive() {
        let mut ring = ArenaRing::new();
        for i in 0..3 {
            ring.push_back(i);
        }
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn invariants_hold_under_mixed_ops() {
        let mut ring = ArenaRing::with_slots(3);
        let mut next = 0u64;
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            if state >> 63 == 0 || ring.is_empty() {
                ring.push_back(next);
                next += 1;
            } else {
                ring.pop_front();
            }
            ring.check_invariants().unwrap();
        }
    }
}
