//! Proves the request plane is heap-allocation-free at steady state: a
//! counting global allocator observes zero allocations across millions
//! of enqueue → poll → complete cycles on both the DARC and c-FCFS
//! engines.
//!
//! Two warm-up regimes are pinned:
//!
//! * **Bounded queues** pre-warm their arena slab to capacity at
//!   construction, so the very first request after construction is
//!   already allocation-free.
//! * **Unbounded queues** grow their slab to the workload's high-water
//!   mark once; after a warm-up burst deeper than anything the measured
//!   phase queues, the steady state touches no allocator either.

#![deny(unsafe_op_in_unsafe_fn)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use persephone_core::dispatch::{CfcfsEngine, DarcEngine, EngineConfig, ScheduleEngine};
use persephone_core::time::Nanos;
use persephone_core::types::TypeId;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// Allocations made by *this thread*. The global counter would also see
// the libtest harness thread, whose mpmc channel lazily allocates its
// park context the first time it blocks waiting for the test result —
// a race that lands inside the measured window often enough to flake.
// Each test drives the engine on its own thread, so the thread-local
// view is exactly the engine's allocation behavior. Const-initialized:
// first access on a thread touches TLS, never the heap, so reading it
// from inside the allocator hook cannot recurse.
thread_local! {
    static THREAD_ALLOCS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

fn count_here() {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
}

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

// SAFETY: delegates everything to the system allocator unchanged; the
// counters are a relaxed atomic and a const-init thread-local `Cell`,
// safe from any context.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: the caller upholds `GlobalAlloc`'s contract; forwarded.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_here();
        // SAFETY: forwarding the caller's contract to `System`.
        unsafe { System.alloc(layout) }
    }
    // SAFETY: the caller upholds `GlobalAlloc`'s contract; forwarded.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarding the caller's contract to `System`.
        unsafe { System.dealloc(ptr, layout) }
    }
    // SAFETY: the caller upholds `GlobalAlloc`'s contract; forwarded.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_here();
        // SAFETY: forwarding the caller's contract to `System`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn hints() -> [Option<Nanos>; 2] {
    [Some(Nanos::from_micros(1)), Some(Nanos::from_micros(100))]
}

/// Drives `cycles` full dispatch cycles with a sawtooth queue depth up
/// to `burst` (so the arena cursor wraps many times), asserting zero
/// heap traffic.
fn assert_steady_state_allocation_free<E: ScheduleEngine<u64>>(
    eng: &mut E,
    burst: u64,
    cycles: u64,
    label: &str,
) {
    let before = thread_allocs();
    let mut i = 0u64;
    while i < cycles {
        for b in 0..burst {
            let ty = TypeId::new(((i + b) % 2) as u32);
            eng.enqueue(ty, i + b, Nanos::from_nanos(i + b))
                .expect("bounded run stays under capacity");
        }
        for b in 0..burst {
            let now = Nanos::from_nanos(i + b);
            let d = eng.poll(now).expect("a worker is free");
            eng.complete(d.worker, Nanos::from_micros(1), now);
        }
        i += burst;
    }
    let after = thread_allocs();
    assert_eq!(
        after - before,
        0,
        "{label}: steady-state dispatch performed {} heap allocations",
        after - before
    );
}

#[test]
fn darc_dispatch_never_allocates_at_steady_state() {
    let mut cfg = EngineConfig::darc(8);
    // Keep the engine in its warm-up phase: reservation rebuilds are a
    // reconfiguration event, not the per-request path this test pins.
    cfg.profiler.min_samples = u64::MAX;
    // Bounded queues: arenas pre-warmed to capacity at construction.
    cfg.queue_capacity = 64;
    let mut eng: DarcEngine<u64> = DarcEngine::new(cfg, 2, &hints());
    assert_steady_state_allocation_free(&mut eng, 8, 1_000_000, "darc bounded");
}

#[test]
fn darc_unbounded_queues_stop_allocating_after_high_water() {
    let mut cfg = EngineConfig::darc(8);
    cfg.profiler.min_samples = u64::MAX;
    cfg.queue_capacity = 0; // unbounded: slab grows to high-water once
    let mut eng: DarcEngine<u64> = DarcEngine::new(cfg, 2, &hints());
    // Warm-up burst deeper than anything the measured phase queues.
    assert!(thread_allocs() > 0, "allocator is counting");
    for b in 0..16u64 {
        eng.enqueue(TypeId::new((b % 2) as u32), b, Nanos::from_nanos(b))
            .expect("unbounded queues never refuse");
    }
    for b in 0..16u64 {
        let d = eng.poll(Nanos::from_nanos(b)).expect("a worker is free");
        eng.complete(d.worker, Nanos::from_micros(1), Nanos::from_nanos(b));
    }
    assert_steady_state_allocation_free(&mut eng, 8, 1_000_000, "darc unbounded");
}

#[test]
fn cfcfs_dispatch_never_allocates_at_steady_state() {
    let mut cfg = EngineConfig::darc(8);
    cfg.profiler.min_samples = u64::MAX;
    cfg.queue_capacity = 64;
    let mut eng: CfcfsEngine<u64> = CfcfsEngine::new(cfg, 2, &hints());
    assert_steady_state_allocation_free(&mut eng, 8, 1_000_000, "cfcfs bounded");
}
