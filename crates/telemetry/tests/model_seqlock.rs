//! Model-checked tests for the real seqlock event ring.
//!
//! `EventRing` publishes multi-word events with Relaxed word stores
//! bracketed by an odd/even sequence protocol — the one place in the
//! workspace where correctness rests on fences rather than per-location
//! release/acquire pairs. Race detection alone cannot catch a weakened
//! publish here (the words are atomics), so these tests rely on the
//! checker's stale-value exploration: a reader that accepts a snapshot
//! must never observe a half-written event. The mutation self-tests in
//! `persephone-check/tests/mutation.rs` prove the same explorer flags
//! the seeded weakening; these tests prove the *shipped* ring survives
//! it.

#![cfg(feature = "model-check")]

use persephone_check::{model, thread};
use persephone_telemetry::ring::{EventRing, SchedEvent};
use std::sync::Arc;

fn steal(n: u64) -> SchedEvent {
    SchedEvent::CycleSteal {
        now_ns: n,
        type_id: (n % 3) as u32,
        worker: (n % 5) as u32,
    }
}

/// Writer-vs-reader: one thread pushes two events while the main
/// thread drains. Every event the collector accepts must decode to a
/// well-formed steal (fields mutually consistent), and the accounting
/// `collected + overwritten == pushed` must reconcile against the head
/// the collector saw — under every interleaving and every
/// stale-but-coherent value the reader's Relaxed word loads can return.
#[test]
fn seqlock_reader_never_accepts_torn_event() {
    model(|| {
        let ring = Arc::new(EventRing::new(2));
        let writer = {
            let ring = ring.clone();
            thread::spawn(move || {
                ring.push(&steal(3));
                ring.push(&steal(4));
            })
        };
        let log = ring.collect();
        for (pos, ev) in &log.events {
            match ev {
                SchedEvent::CycleSteal {
                    now_ns,
                    type_id,
                    worker,
                } => {
                    assert_eq!(*now_ns, pos + 3, "event matches its position");
                    assert_eq!(*type_id as u64, now_ns % 3, "fields from one write");
                    assert_eq!(*worker as u64, now_ns % 5, "fields from one write");
                }
                other => panic!("torn or foreign event decoded: {other:?}"),
            }
        }
        assert_eq!(
            log.events.len() as u64 + log.overwritten,
            log.pushed,
            "accounting reconciles against the observed head"
        );
        writer.join();
        // Quiescent drain sees everything that survived the 2-slot ring.
        let after = ring.collect();
        assert_eq!(after.pushed, 2);
        assert_eq!(after.events.len() as u64 + after.overwritten, 2);
    });
}

/// Two writers race `fetch_add` claims for the *same slot* (capacity 1)
/// so their odd/even sequence transitions and word stores interleave on
/// one seqlock. After both finish, the drain recovers at most one
/// event, fully formed — never a blend — and whichever writer's publish
/// landed last determines the surviving sequence (the position-0 writer
/// can overwrite position 1's publish; the sequence check then discards
/// the slot rather than misattribute it). The accounting must cover
/// everything that did not survive.
#[test]
fn seqlock_overlapping_writers_never_blend() {
    model(|| {
        let ring = Arc::new(EventRing::new(1));
        let writers: Vec<_> = (0..2u64)
            .map(|t| {
                let ring = ring.clone();
                thread::spawn(move || {
                    ring.push(&steal(10 + t));
                })
            })
            .collect();
        for w in writers {
            w.join();
        }
        let log = ring.collect();
        assert_eq!(log.pushed, 2);
        // A mid-write or stale-sequence slot is discarded and counted,
        // never decoded.
        assert!(log.events.len() <= 1);
        for (pos, ev) in &log.events {
            assert!(*pos <= 1, "surviving position is one that was pushed");
            match ev {
                SchedEvent::CycleSteal {
                    now_ns,
                    type_id,
                    worker,
                } => {
                    assert!((10..=11).contains(now_ns), "a pushed event, intact");
                    assert_eq!(*type_id as u64, now_ns % 3);
                    assert_eq!(*worker as u64, now_ns % 5);
                }
                other => panic!("torn or foreign event decoded: {other:?}"),
            }
        }
        assert_eq!(log.events.len() as u64 + log.overwritten, 2);
    });
}
