//! Histogram percentile accuracy against an exact-sort oracle, on the
//! three shapes that matter for the paper's workloads: uniform,
//! bimodal (the High/Extreme Bimodal mixes), and log-normal tails.
//! The bound under test is the bucket-width guarantee: relative error
//! ≤ 2^-precision_bits (plus one nearest-rank step).

use persephone_telemetry::LogHist;

/// splitmix64 — deterministic, dependency-free.
struct Mix(u64);
impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Standard normal via Box-Muller.
fn normal(rng: &mut Mix) -> f64 {
    let u1 = rng.f64().max(1e-12);
    let u2 = rng.f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn check(name: &str, precision_bits: u32, samples: &[u64]) {
    let mut h = LogHist::new(precision_bits);
    for &v in samples {
        h.record(v);
    }
    let mut exact = samples.to_vec();
    exact.sort_unstable();
    // Bucket width bound plus a little slack for the nearest-rank step
    // landing one bucket over on discrete data.
    let bound = 2.0 * 2f64.powi(-(precision_bits as i32));
    for p in [0.25, 0.5, 0.9, 0.99, 0.999, 0.9999] {
        let rank = ((exact.len() as f64 * p).ceil() as usize).clamp(1, exact.len()) - 1;
        let truth = exact[rank];
        let approx = h.quantile(p);
        let rel = (approx as f64 - truth as f64).abs() / (truth.max(1) as f64);
        assert!(
            rel <= bound,
            "{name} p{p}: approx {approx} vs exact {truth}, rel err {rel:.5} > {bound:.5}"
        );
    }
    assert_eq!(h.count(), samples.len() as u64);
    assert_eq!(h.max(), *exact.last().unwrap());
}

#[test]
fn uniform_matches_oracle() {
    let mut rng = Mix(1);
    let samples: Vec<u64> = (0..100_000).map(|_| 1_000 + rng.next() % 999_000).collect();
    check("uniform", 7, &samples);
    check("uniform-coarse", 5, &samples);
}

#[test]
fn bimodal_matches_oracle() {
    // Extreme Bimodal: 99.5 % at ~500 ns, 0.5 % at ~500 µs.
    let mut rng = Mix(2);
    let samples: Vec<u64> = (0..200_000)
        .map(|_| {
            if rng.next() % 1000 < 5 {
                450_000 + rng.next() % 100_000
            } else {
                400 + rng.next() % 200
            }
        })
        .collect();
    check("bimodal", 7, &samples);
    check("bimodal-coarse", 5, &samples);
}

#[test]
fn log_normal_matches_oracle() {
    let mut rng = Mix(3);
    // Median ~10 µs with a fat right tail (σ = 1.5 in log space).
    let samples: Vec<u64> = (0..100_000)
        .map(|_| (10_000.0 * (1.5 * normal(&mut rng)).exp()).max(1.0) as u64)
        .collect();
    check("log-normal", 7, &samples);
}
