//! Proves the hot-path `record_*` calls are heap-allocation-free: a
//! counting global allocator observes zero allocations across millions
//! of recordings. (Lock-freedom is by construction — every path is
//! relaxed/release atomics only; see the module docs in the crate.)

// The zero-allocation property holds for the production atomics. Under
// `--features model-check` the sync facade swaps in the checker's
// instrumented shims, whose fallback path records per-atomic store
// history on the heap — an artifact of the test double, not a hot-path
// regression — so this proof only runs with default features.
#![cfg(not(feature = "model-check"))]
#![deny(unsafe_op_in_unsafe_fn)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use persephone_telemetry::{DispatchKind, Telemetry, TelemetryConfig};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// Allocations made by *this thread*. The global counter would also see
// the libtest harness thread, whose mpmc channel lazily allocates its
// park context the first time it blocks waiting for the test result —
// a race that lands inside the measured window often enough to flake.
// The test drives recording on its own thread, so the thread-local view
// is exactly the recording path's behavior. Const-initialized: first
// access on a thread touches TLS, never the heap, so reading it from
// inside the allocator hook cannot recurse.
thread_local! {
    static THREAD_ALLOCS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

fn count_here() {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
}

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

// SAFETY: delegates everything to the system allocator unchanged; the
// counters are a relaxed atomic and a const-init thread-local `Cell`,
// safe from any context.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: the caller upholds `GlobalAlloc`'s contract; forwarded.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_here();
        // SAFETY: forwarding the caller's contract to `System`.
        unsafe { System.alloc(layout) }
    }
    // SAFETY: the caller upholds `GlobalAlloc`'s contract; forwarded.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarding the caller's contract to `System`.
        unsafe { System.dealloc(ptr, layout) }
    }
    // SAFETY: the caller upholds `GlobalAlloc`'s contract; forwarded.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_here();
        // SAFETY: forwarding the caller's contract to `System`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

#[test]
fn recording_never_allocates() {
    // Construction allocates (fixed footprint, done once)...
    let t = Telemetry::new(TelemetryConfig::new(4, 8));
    let before = thread_allocs();
    // ...recording must not, even when the event ring wraps many times.
    for i in 0..2_000_000u64 {
        let ty = (i % 5) as usize; // includes the UNKNOWN slot
        let worker = (i % 8) as usize;
        t.record_arrival(ty);
        t.record_queue_depth(ty, i % 33);
        let kind = match i % 4 {
            0 => DispatchKind::Reserved,
            1 => DispatchKind::Stolen,
            2 => DispatchKind::Spillway,
            _ => DispatchKind::Fcfs,
        };
        t.record_dispatch(ty, worker, kind, i);
        t.record_completion(ty, worker, 1 + i % 100_000, 1 + i % 10_000);
        t.record_worker_busy(worker, 1 + i % 10_000);
        if i % 1000 == 0 {
            t.record_drop(ty, i % 64, i);
            t.record_reservation_update(i, i / 1000, 42, &[1, 2, 3, 4], &[4, 3, 2, 1]);
        }
    }
    let after = thread_allocs();
    assert_eq!(
        after - before,
        0,
        "hot-path recording performed {} heap allocations",
        after - before
    );
    // Sanity: the work above was actually recorded.
    let snap = t.snapshot();
    assert_eq!(snap.completions(), 2_000_000);
    assert!(snap.events.pushed > 1_000_000);
}
