//! Log-bucketed latency histograms (HDR-style percentile sketches).
//!
//! Values are bucketed by `(exponent, mantissa-slot)`: each power of two
//! is split into `2^precision_bits` linear slots — the same scheme
//! HdrHistogram uses. With the default 7 bits of precision the relative
//! quantile error is below `2^-7 ≈ 0.8 %` (≈2 significant digits) and a
//! histogram occupies a fixed 64 KiB, regardless of how many samples it
//! absorbs.
//!
//! Two recorders share the bucketing:
//!
//! * [`LogHist`] — single-owner (`&mut self`), exact mean and max; the
//!   simulator's per-type recorder.
//! * [`AtomicHist`] — shared (`&self`), [`AtomicHist::record`] is exactly
//!   one relaxed atomic add; the runtime's hot-path instrument. Mean and
//!   max are reconstructed from the buckets, within bucket precision.
//!
//! Both produce a [`HistSnapshot`]: a frozen, mergeable copy answering
//! percentile queries.

use crate::sync::{AtomicU64, Ordering};

/// Default sub-bucket precision: `2^-7 ≈ 0.8 %` relative error.
pub const DEFAULT_PRECISION_BITS: u32 = 7;

/// Number of buckets a histogram with `precision_bits` carries.
fn num_buckets(precision_bits: u32) -> usize {
    64 * (1usize << precision_bits)
}

/// Bucket index for `value` (saturating at the last bucket).
#[inline]
fn index(precision_bits: u32, value: u64) -> usize {
    let slots = 1u64 << precision_bits;
    if value < slots {
        // Small values are exact.
        return value as usize;
    }
    let exp = 63 - value.leading_zeros() as u64;
    let slot = (value >> (exp - precision_bits as u64)) - slots;
    let i =
        (exp as usize - precision_bits as usize) * slots as usize + slots as usize + slot as usize;
    i.min(num_buckets(precision_bits) - 1)
}

/// Lower bound of the bucket at `index` (its representative value).
fn bucket_low(precision_bits: u32, index: usize) -> u64 {
    let slots = 1usize << precision_bits;
    if index < slots {
        return index as u64;
    }
    let group = (index - slots) / slots;
    let slot = (index - slots) % slots;
    let exp = group as u32 + precision_bits;
    (1u64 << exp) + ((slot as u64) << (exp - precision_bits))
}

/// Width of the bucket at `index` (1 for the exact small-value range).
fn bucket_width(precision_bits: u32, index: usize) -> u64 {
    let slots = 1usize << precision_bits;
    if index < slots {
        return 1;
    }
    let exp = ((index - slots) / slots) as u32 + precision_bits;
    1u64 << (exp - precision_bits)
}

fn assert_precision(precision_bits: u32) {
    assert!(
        (1..=10).contains(&precision_bits),
        "precision_bits must be in 1..=10, got {precision_bits}"
    );
}

/// A single-owner histogram over `u64` values (nanoseconds, typically),
/// with exact count, mean, and max alongside the bucketed percentiles.
#[derive(Clone, Debug)]
pub struct LogHist {
    counts: Vec<u64>,
    precision_bits: u32,
    total: u64,
    max: u64,
    sum: u128,
}

impl LogHist {
    /// Creates a histogram with `precision_bits` of sub-bucket precision:
    /// the relative quantile error is at most `2^-precision_bits`
    /// (e.g. 5 bits ⇒ ≈3 %, 7 bits ⇒ ≈0.8 %).
    ///
    /// # Panics
    ///
    /// Panics if `precision_bits` is not in `1..=10`.
    pub fn new(precision_bits: u32) -> Self {
        assert_precision(precision_bits);
        LogHist {
            counts: vec![0; num_buckets(precision_bits)],
            precision_bits,
            total: 0,
            max: 0,
            sum: 0,
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let i = index(self.precision_bits, value);
        self.counts[i] += 1;
        self.total += 1;
        self.max = self.max.max(value);
        self.sum += value as u128;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded value (exact).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (exact).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Approximate `p`-quantile (0–1), within the configured relative
    /// error; 0 when empty. `quantile(1.0)` is the exact max.
    pub fn quantile(&self, p: f64) -> u64 {
        quantile_of(&self.counts, self.precision_bits, self.total, self.max, p)
    }

    /// Merges another histogram with the same precision into this one.
    ///
    /// # Panics
    ///
    /// Panics on precision mismatch.
    pub fn merge(&mut self, other: &LogHist) {
        assert_eq!(self.precision_bits, other.precision_bits);
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Freezes the current contents into a mergeable snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            counts: self.counts.clone(),
            precision_bits: self.precision_bits,
            total: self.total,
            max: self.max,
            sum: self.sum,
        }
    }
}

/// A shared, lock-free histogram: [`AtomicHist::record`] is exactly one
/// relaxed `fetch_add` on the target bucket — no locks, no allocation, no
/// other shared writes — so it can sit on a nanosecond-scale hot path and
/// be hammered from any number of threads.
#[derive(Debug)]
pub struct AtomicHist {
    counts: Box<[AtomicU64]>,
    precision_bits: u32,
}

impl AtomicHist {
    /// Creates a histogram with `precision_bits` of sub-bucket precision.
    ///
    /// # Panics
    ///
    /// Panics if `precision_bits` is not in `1..=10`.
    pub fn new(precision_bits: u32) -> Self {
        assert_precision(precision_bits);
        let counts: Box<[AtomicU64]> = (0..num_buckets(precision_bits))
            .map(|_| AtomicU64::new(0))
            .collect();
        AtomicHist {
            counts,
            precision_bits,
        }
    }

    /// Records one value: a single relaxed atomic add.
    #[inline]
    pub fn record(&self, value: u64) {
        let i = index(self.precision_bits, value);
        // audit:ordering: independent bucket increment — the histogram
        // publishes no data through its counters
        self.counts[i].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded values (sum over buckets; monotone but not a
    /// single linearization point under concurrent recording).
    pub fn count(&self) -> u64 {
        // audit:ordering: statistics read — approximate under concurrent
        // recording by documented contract
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Freezes the current contents into a mergeable snapshot. Mean and
    /// max are reconstructed from bucket representatives, so they carry
    /// the same relative error bound as the percentiles.
    ///
    /// Report-assembly lane (recorders call [`AtomicHist::record`], never
    /// this) — cold keeps the bucket-Vec build off the audited hot path.
    #[cold]
    pub fn snapshot(&self) -> HistSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            // audit:ordering: statistics reads — a snapshot taken during
            // recording is approximate by documented contract
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let mut total = 0u64;
        let mut sum = 0u128;
        let mut max = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            total += c;
            let low = bucket_low(self.precision_bits, i);
            // Mid-bucket representative halves the worst-case mean bias.
            let rep = low + bucket_width(self.precision_bits, i) / 2;
            sum += c as u128 * rep as u128;
            max = low + bucket_width(self.precision_bits, i).saturating_sub(1);
        }
        HistSnapshot {
            counts,
            precision_bits: self.precision_bits,
            total,
            max,
            sum,
        }
    }
}

/// A frozen histogram: bucket counts plus summary stats, mergeable across
/// workers/shards and queryable for percentiles.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistSnapshot {
    counts: Vec<u64>,
    precision_bits: u32,
    total: u64,
    max: u64,
    sum: u128,
}

impl HistSnapshot {
    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded value (exact from [`LogHist`], bucket-precision
    /// from [`AtomicHist`]); 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Approximate `p`-quantile (0–1), within `2^-precision_bits`
    /// relative error; 0 when empty. `quantile(1.0)` equals
    /// [`HistSnapshot::max`].
    pub fn quantile(&self, p: f64) -> u64 {
        quantile_of(&self.counts, self.precision_bits, self.total, self.max, p)
    }

    /// Merges `other` into this snapshot. Merging is associative and
    /// commutative: any merge order over a set of snapshots produces the
    /// same result.
    ///
    /// # Panics
    ///
    /// Panics when both snapshots are non-empty with different precision.
    pub fn merge(&mut self, other: &HistSnapshot) {
        if other.total == 0 && other.counts.is_empty() {
            return;
        }
        if self.counts.is_empty() {
            *self = other.clone();
            return;
        }
        assert_eq!(
            self.precision_bits, other.precision_bits,
            "merging snapshots of different precision"
        );
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }
}

fn quantile_of(counts: &[u64], precision_bits: u32, total: u64, max: u64, p: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    let rank = ((total as f64 * p).ceil() as u64).clamp(1, total);
    if rank == total {
        // The top-rank query asks for the distribution max. Answering
        // with the final occupied bucket's *lower* bound understated it
        // by up to `bucket_width - 1` (an off-by-one invisible in the
        // zero-width exact range, wrong everywhere else); the tracked
        // max is that bucket's inclusive upper bound — exact for
        // `LogHist`, bucket-precision for `AtomicHist`.
        return max;
    }
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return bucket_low(precision_bits, i).min(max);
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny splitmix64 so the tests need no RNG dependency.
    struct Mix(u64);
    impl Mix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    #[test]
    fn top_quantile_is_the_bucket_upper_bound_not_lower() {
        // Regression: with 7 bits, 1003 lands in bucket [1000, 1004).
        // quantile(1.0) used to answer the bucket's lower bound (1000),
        // understating the max by bucket_width - 1.
        let mut h = LogHist::new(7);
        h.record(1003);
        assert_eq!(h.max(), 1003);
        assert_eq!(h.quantile(1.0), 1003, "top quantile must equal max");

        // Same shape through the atomic recorder: max is reconstructed
        // as the bucket's inclusive upper bound and p=1.0 must match it.
        let a = AtomicHist::new(7);
        a.record(1003);
        let s = a.snapshot();
        assert_eq!(s.max(), 1003);
        assert_eq!(s.quantile(1.0), 1003);

        // Boundary: the exact small-value range has width-1 buckets, so
        // upper bound == lower bound there (the case that masked the
        // bug); zero must stay zero.
        let mut z = LogHist::new(7);
        z.record(0);
        assert_eq!(z.quantile(1.0), 0);
        let mut small = LogHist::new(7);
        for v in 0..32 {
            small.record(v);
        }
        assert_eq!(small.quantile(1.0), 31);

        // Sub-max ranks still answer bucket lower bounds.
        let mut two = LogHist::new(7);
        two.record(1000);
        two.record(1003);
        assert_eq!(two.quantile(0.5), 1000);
        assert_eq!(two.quantile(1.0), 1003);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHist::new(5);
        for v in 0..32 {
            h.record(v);
        }
        // Nearest-rank p50 of 0..=31 is the 16th sample: value 15.
        assert_eq!(h.quantile(0.5), 15);
        assert_eq!(h.count(), 32);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn quantiles_track_exact_within_relative_error() {
        let mut h = LogHist::new(5);
        let mut rng = Mix(7);
        let mut exact: Vec<u64> = Vec::new();
        for _ in 0..200_000 {
            // A heavy-tailed mix, like the workloads.
            let v = if rng.below(100) == 0 {
                500_000 + rng.below(100_000)
            } else {
                500 + rng.below(1_000)
            };
            h.record(v);
            exact.push(v);
        }
        exact.sort_unstable();
        for p in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((exact.len() as f64 * p).ceil() as usize).clamp(1, exact.len()) - 1;
            let truth = exact[rank] as f64;
            let approx = h.quantile(p) as f64;
            let rel = (approx - truth).abs() / truth;
            assert!(rel < 0.04, "p{p}: approx {approx} vs exact {truth} ({rel})");
        }
    }

    #[test]
    fn mean_and_max_are_exact() {
        let mut h = LogHist::new(4);
        for v in [1u64, 10, 100, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.max(), 1_000_000);
        assert!((h.mean() - 250_027.75).abs() < 1e-6);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LogHist::new(5);
        assert_eq!(h.quantile(0.999), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn merge_combines_distributions() {
        let mut a = LogHist::new(5);
        let mut b = LogHist::new(5);
        for v in 0..1000 {
            a.record(v);
            b.record(v + 10_000);
        }
        a.merge(&b);
        assert_eq!(a.count(), 2000);
        assert!(a.quantile(0.25) < 1_000);
        assert!(a.quantile(0.75) >= 10_000);
        assert_eq!(a.max(), 10_999);
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn merge_rejects_precision_mismatch() {
        let mut a = LogHist::new(5);
        let b = LogHist::new(6);
        a.merge(&b);
    }

    #[test]
    fn huge_values_saturate_without_panicking() {
        let mut h = LogHist::new(5);
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.quantile(0.5) > 1u64 << 62);
    }

    #[test]
    fn atomic_hist_agrees_with_loghist_quantiles() {
        let a = AtomicHist::new(7);
        let mut h = LogHist::new(7);
        let mut rng = Mix(11);
        for _ in 0..50_000 {
            let v = 100 + rng.below(1_000_000);
            a.record(v);
            h.record(v);
        }
        let sa = a.snapshot();
        let sh = h.snapshot();
        assert_eq!(sa.count(), sh.count());
        for p in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(sa.quantile(p), sh.quantile(p), "p{p} diverged");
        }
        // Reconstructed mean/max stay within one bucket width (≈0.8 %).
        let rel_mean = (sa.mean() - sh.mean()).abs() / sh.mean();
        assert!(rel_mean < 0.01, "mean rel err {rel_mean}");
        let rel_max = (sa.max() as f64 - sh.max() as f64).abs() / sh.max() as f64;
        assert!(rel_max < 0.01, "max rel err {rel_max}");
    }

    #[test]
    fn snapshot_merge_is_associative_and_commutative() {
        let mk = |seed: u64, n: u64| {
            let mut h = LogHist::new(7);
            let mut rng = Mix(seed);
            for _ in 0..n {
                h.record(1 + rng.below(1 << 20));
            }
            h.snapshot()
        };
        let (a, b, c) = (mk(1, 1000), mk(2, 2000), mk(3, 500));
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        // c ⊕ b ⊕ a (commutativity)
        let mut rev = c.clone();
        rev.merge(&b);
        rev.merge(&a);
        assert_eq!(left, rev);
        // Identity: merging an empty snapshot changes nothing.
        let mut with_empty = left.clone();
        with_empty.merge(&HistSnapshot::default());
        assert_eq!(left, with_empty);
        let mut from_empty = HistSnapshot::default();
        from_empty.merge(&left);
        assert_eq!(left, from_empty);
    }

    #[test]
    fn concurrent_recording_conserves_totals() {
        use std::sync::Arc;
        const THREADS: u64 = 4;
        const PER: u64 = 50_000;
        let h = Arc::new(AtomicHist::new(7));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    let mut rng = Mix(t);
                    for _ in 0..PER {
                        h.record(1 + rng.below(1 << 30));
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        assert_eq!(h.count(), THREADS * PER);
        assert_eq!(h.snapshot().count(), THREADS * PER);
    }
}
