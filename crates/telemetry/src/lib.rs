//! # persephone-telemetry
//!
//! Zero-allocation, lock-free observability instruments for the
//! Perséphone stack. Every figure in the paper is a tail-latency claim,
//! so the instruments are built for always-on use inside a
//! microsecond-scale dispatch loop:
//!
//! * [`hist::LogHist`] / [`hist::AtomicHist`] — log-bucketed HDR-style
//!   latency histograms (~2 significant digits). `record()` on the
//!   atomic variant is exactly one relaxed `fetch_add`.
//! * [`counters::TypeCounters`] / [`counters::WorkerCounters`] — counter
//!   sets in [`CachePadded`] slots, one relaxed RMW per increment.
//! * [`ring::EventRing`] — a bounded seqlock ring of scheduler decisions
//!   (reservation updates with old→new core maps, cycle-steals, spillway
//!   hits, drops); overwrites are detectable via sequence numbers.
//! * [`Telemetry`] / [`Snapshot`] — the registry that bundles the above
//!   and freezes into mergeable snapshots with plain-text and JSON-lines
//!   exporters.
//!
//! The crate is dependency-free and identifier-agnostic (types and
//! workers are raw indices) so every layer — core engine, simulator,
//! runtime, benches — can depend on it without cycles.
//!
//! ## Hot-path cost budget
//!
//! | call | cost |
//! |---|---|
//! | `AtomicHist::record` | 1 relaxed `fetch_add` |
//! | counter increment | 1 relaxed `fetch_add` / `fetch_max` |
//! | `EventRing::push` | 1 relaxed `fetch_add` + 10 relaxed/release stores |
//!
//! No `record_*` path allocates, locks, or spins.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod hist;
pub mod padded;
pub mod ring;
pub mod snapshot;
pub mod sync;

pub use counters::{TypeCounters, TypeCountersSnap, WorkerCounters, WorkerCountersSnap};
pub use hist::{AtomicHist, HistSnapshot, LogHist, DEFAULT_PRECISION_BITS};
pub use padded::CachePadded;
pub use ring::{EventLog, EventRing, SchedEvent, MAX_MAP_TYPES};
pub use snapshot::{DispatchKind, Snapshot, Telemetry, TelemetryConfig, TypeSnapshot};
