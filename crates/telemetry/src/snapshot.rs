//! The [`Telemetry`] registry and its frozen [`Snapshot`].
//!
//! `Telemetry` bundles every instrument the scheduler hot path touches —
//! per-type sojourn/service histograms, per-type and per-worker counter
//! slots, and the scheduler-event ring — behind `&self` methods that are
//! all lock-free and allocation-free (each is a handful of relaxed
//! atomics). It is built once at engine construction and shared via
//! `Arc` between the dispatcher, the workers, and whoever reports.
//!
//! [`Telemetry::snapshot`] freezes everything into a [`Snapshot`]:
//! plain owned data that can be merged across shards, queried for
//! percentiles, and exported as aligned plain text or JSON lines.

use std::fmt::Write as _;

use crate::counters::{TypeCounters, TypeCountersSnap, WorkerCounters, WorkerCountersSnap};
use crate::hist::{AtomicHist, HistSnapshot, DEFAULT_PRECISION_BITS};
use crate::padded::CachePadded;
use crate::ring::{EventLog, EventRing, SchedEvent, MAX_MAP_TYPES};

/// How a request reached its worker — determines which counters a
/// dispatch bumps and whether an event is recorded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchKind {
    /// Placed on a worker reserved for the request's own group.
    Reserved,
    /// Placed on a stealable worker from a longer group (cycle-steal).
    Stolen,
    /// Placed on a spillway core (ungrouped or UNKNOWN type).
    Spillway,
    /// Placed by the c-FCFS path (warm-up or baseline mode).
    Fcfs,
}

/// Sizing for a [`Telemetry`] registry.
#[derive(Clone, Copy, Debug)]
pub struct TelemetryConfig {
    /// Registered request types (an extra slot is added for UNKNOWN).
    pub num_types: usize,
    /// Worker cores.
    pub num_workers: usize,
    /// Histogram precision (see [`crate::hist::LogHist::new`]).
    pub precision_bits: u32,
    /// Event-ring capacity; rounded up to a power of two.
    pub ring_capacity: usize,
}

impl TelemetryConfig {
    /// Default-precision config for a `num_types` × `num_workers` engine.
    pub fn new(num_types: usize, num_workers: usize) -> Self {
        TelemetryConfig {
            num_types,
            num_workers,
            precision_bits: DEFAULT_PRECISION_BITS,
            ring_capacity: 1024,
        }
    }
}

/// The shared instrument registry. All `record_*` methods take `&self`,
/// never lock, and never allocate.
#[derive(Debug)]
pub struct Telemetry {
    /// Per-type sojourn (queueing + service) histograms; slot
    /// `num_types` is the UNKNOWN type.
    sojourn: Vec<AtomicHist>,
    /// Per-type service-time histograms, same layout.
    service: Vec<AtomicHist>,
    type_counters: Box<[CachePadded<TypeCounters>]>,
    worker_counters: Box<[CachePadded<WorkerCounters>]>,
    events: EventRing,
    num_types: usize,
    /// Packets that failed wire validation (truncated, bad magic, wrong
    /// kind) on the RX path — server-wide, not per type, because a
    /// malformed packet has no trustworthy type field to attribute.
    rx_malformed: core::sync::atomic::AtomicU64,
}

impl Telemetry {
    /// Builds a registry sized for `cfg`. This is the only allocating
    /// call; everything after construction is fixed-footprint.
    pub fn new(cfg: TelemetryConfig) -> Self {
        let slots = cfg.num_types + 1; // + UNKNOWN
        Telemetry {
            sojourn: (0..slots)
                .map(|_| AtomicHist::new(cfg.precision_bits))
                .collect(),
            service: (0..slots)
                .map(|_| AtomicHist::new(cfg.precision_bits))
                .collect(),
            type_counters: (0..slots)
                .map(|_| CachePadded::new(TypeCounters::default()))
                .collect(),
            worker_counters: (0..cfg.num_workers)
                .map(|_| CachePadded::new(WorkerCounters::default()))
                .collect(),
            events: EventRing::new(cfg.ring_capacity.next_power_of_two().max(2)),
            num_types: cfg.num_types,
            rx_malformed: core::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of regular (non-UNKNOWN) type slots.
    pub fn num_types(&self) -> usize {
        self.num_types
    }

    /// Raw access to the event ring (for incremental drains).
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    #[inline]
    fn ty_slot(&self, ty: usize) -> usize {
        ty.min(self.num_types)
    }

    /// A request of type `ty` was classified and enqueued. Pass
    /// `ty >= num_types` for UNKNOWN.
    #[inline]
    pub fn record_arrival(&self, ty: usize) {
        use core::sync::atomic::Ordering;
        self.type_counters[self.ty_slot(ty)]
            .arrivals
            // audit:ordering: independent statistics counter — no data is published through it
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Observed queue depth for `ty` (keeps the high-water mark).
    #[inline]
    pub fn record_queue_depth(&self, ty: usize, depth: u64) {
        self.type_counters[self.ty_slot(ty)].observe_queue_depth(depth);
    }

    /// A request of type `ty` was placed on `worker` via `kind`.
    /// Steals and spillway placements also log a ring event.
    #[inline]
    pub fn record_dispatch(&self, ty: usize, worker: usize, kind: DispatchKind, now_ns: u64) {
        use core::sync::atomic::Ordering;
        let t = &self.type_counters[self.ty_slot(ty)];
        let w = &self.worker_counters[worker.min(self.worker_counters.len() - 1)];
        match kind {
            DispatchKind::Reserved | DispatchKind::Fcfs => {
                // audit:ordering: independent statistics counter — no data is published through it
                t.dispatches.fetch_add(1, Ordering::Relaxed);
                // audit:ordering: independent statistics counter — no data is published through it
                w.dispatches.fetch_add(1, Ordering::Relaxed);
            }
            DispatchKind::Stolen => {
                // audit:ordering: independent statistics counter — no data is published through it
                t.steals.fetch_add(1, Ordering::Relaxed);
                // audit:ordering: independent statistics counter — no data is published through it
                w.steals.fetch_add(1, Ordering::Relaxed);
                self.events.push(&SchedEvent::CycleSteal {
                    now_ns,
                    type_id: ty as u32,
                    worker: worker as u32,
                });
            }
            DispatchKind::Spillway => {
                // audit:ordering: independent statistics counter — no data is published through it
                t.spillway_hits.fetch_add(1, Ordering::Relaxed);
                // audit:ordering: independent statistics counter — no data is published through it
                w.steals.fetch_add(1, Ordering::Relaxed);
                self.events.push(&SchedEvent::SpillwayHit {
                    now_ns,
                    type_id: ty as u32,
                    worker: worker as u32,
                });
            }
        }
    }

    /// A request of type `ty` finished on `worker`: records its sojourn
    /// (queueing + service) and service time.
    #[inline]
    pub fn record_completion(&self, ty: usize, worker: usize, sojourn_ns: u64, service_ns: u64) {
        use core::sync::atomic::Ordering;
        let slot = self.ty_slot(ty);
        self.sojourn[slot].record(sojourn_ns);
        self.service[slot].record(service_ns);
        self.type_counters[slot]
            .completions
            // audit:ordering: independent statistics counter — no data is published through it
            .fetch_add(1, Ordering::Relaxed);
        self.worker_counters[worker.min(self.worker_counters.len() - 1)]
            .completions
            // audit:ordering: independent statistics counter — no data is published through it
            .fetch_add(1, Ordering::Relaxed);
    }

    /// `worker` spent `busy_ns` executing a handler — recorded by the
    /// worker thread itself on its completion path.
    #[inline]
    pub fn record_worker_busy(&self, worker: usize, busy_ns: u64) {
        use core::sync::atomic::Ordering;
        self.worker_counters[worker.min(self.worker_counters.len() - 1)]
            .busy_ns
            // audit:ordering: independent statistics counter — no data is published through it
            .fetch_add(busy_ns, Ordering::Relaxed);
    }

    /// A request of type `ty` was rejected by flow control.
    #[inline]
    pub fn record_drop(&self, ty: usize, queue_depth: u64, now_ns: u64) {
        use core::sync::atomic::Ordering;
        self.type_counters[self.ty_slot(ty)]
            .drops
            // audit:ordering: independent statistics counter — no data is published through it
            .fetch_add(1, Ordering::Relaxed);
        self.events.push(&SchedEvent::Drop {
            now_ns,
            type_id: ty as u32,
            queue_depth,
        });
    }

    /// A head-of-queue request of type `ty` exceeded its deadline after
    /// waiting `waited_ns` and was shed before dispatch.
    #[inline]
    pub fn record_expired(&self, ty: usize, waited_ns: u64, now_ns: u64) {
        use core::sync::atomic::Ordering;
        self.type_counters[self.ty_slot(ty)]
            .expired
            // audit:ordering: independent statistics counter — no data is published through it
            .fetch_add(1, Ordering::Relaxed);
        self.events.push(&SchedEvent::DeadlineExpired {
            now_ns,
            type_id: ty as u32,
            waited_ns,
        });
    }

    /// `worker` was quarantined: its in-flight request of type `ty` had
    /// been running for `running_ns`, far past the type's profiled mean.
    #[inline]
    pub fn record_quarantine(&self, worker: usize, ty: usize, running_ns: u64, now_ns: u64) {
        use core::sync::atomic::Ordering;
        self.worker_counters[worker.min(self.worker_counters.len() - 1)]
            .quarantines
            // audit:ordering: independent statistics counter — no data is published through it
            .fetch_add(1, Ordering::Relaxed);
        self.events.push(&SchedEvent::WorkerQuarantine {
            now_ns,
            worker: worker as u32,
            type_id: ty as u32,
            running_ns,
        });
    }

    /// A quarantined `worker` completed its stalled request (total wall
    /// time `stalled_ns`) and rejoined the free pool.
    #[inline]
    pub fn record_release(&self, worker: usize, stalled_ns: u64, now_ns: u64) {
        self.events.push(&SchedEvent::WorkerRelease {
            now_ns,
            worker: worker as u32,
            stalled_ns,
        });
    }

    /// `worker` abandoned a transmission after exhausting its bounded
    /// send retries (the receiver's queue stayed full).
    #[inline]
    pub fn record_tx_give_up(&self, worker: usize) {
        use core::sync::atomic::Ordering;
        self.worker_counters[worker.min(self.worker_counters.len() - 1)]
            .tx_give_ups
            // audit:ordering: independent statistics counter — no data is published through it
            .fetch_add(1, Ordering::Relaxed);
    }

    /// A packet failed wire validation on the RX path (truncated
    /// datagram, bad magic, non-request kind) and was answered with
    /// `BadRequest` instead of being scheduled.
    #[inline]
    pub fn record_rx_malformed(&self) {
        use core::sync::atomic::Ordering;
        // audit:ordering: independent statistics counter — no data is published through it
        self.rx_malformed.fetch_add(1, Ordering::Relaxed);
    }

    /// A reservation update was installed: logs the old→new
    /// guaranteed-core map and the demand shift that triggered it.
    pub fn record_reservation_update(
        &self,
        now_ns: u64,
        update_id: u64,
        trigger_delta_millionths: u64,
        old_guaranteed: &[usize],
        new_guaranteed: &[usize],
    ) {
        let mut old = [0u8; MAX_MAP_TYPES];
        let mut new = [0u8; MAX_MAP_TYPES];
        for (dst, src) in old.iter_mut().zip(old_guaranteed) {
            *dst = (*src).min(u8::MAX as usize) as u8;
        }
        for (dst, src) in new.iter_mut().zip(new_guaranteed) {
            *dst = (*src).min(u8::MAX as usize) as u8;
        }
        self.events.push(&SchedEvent::ReservationUpdate {
            now_ns,
            update_id,
            trigger_delta_millionths,
            old_guaranteed: old,
            new_guaranteed: new,
        });
    }

    /// Freezes every instrument into a [`Snapshot`].
    ///
    /// Report-assembly lane, called once per run or per poll interval —
    /// cold marks the audit frontier so its Vec builds stay off-path.
    #[cold]
    pub fn snapshot(&self) -> Snapshot {
        let snap_ty = |i: usize| TypeSnapshot {
            sojourn: self.sojourn[i].snapshot(),
            service: self.service[i].snapshot(),
            counters: self.type_counters[i].snapshot(),
        };
        Snapshot {
            types: (0..self.num_types).map(snap_ty).collect(),
            unknown: Some(snap_ty(self.num_types)),
            workers: self.worker_counters.iter().map(|w| w.snapshot()).collect(),
            events: self.events.collect(),
            rx_malformed: self
                .rx_malformed
                // audit:ordering: independent statistics counter — no data is published through it
                .load(core::sync::atomic::Ordering::Relaxed),
        }
    }
}

/// Frozen per-type instruments.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TypeSnapshot {
    /// Sojourn (queueing + service) latency distribution.
    pub sojourn: HistSnapshot,
    /// Service-time distribution.
    pub service: HistSnapshot,
    /// Per-type counters.
    pub counters: TypeCountersSnap,
}

impl TypeSnapshot {
    /// Merges another type snapshot into this one.
    pub fn merge(&mut self, other: &TypeSnapshot) {
        self.sojourn.merge(&other.sojourn);
        self.service.merge(&other.service);
        self.counters.merge(&other.counters);
    }
}

/// A frozen, mergeable copy of every instrument in a [`Telemetry`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Regular type slots, indexed by type id.
    pub types: Vec<TypeSnapshot>,
    /// The UNKNOWN slot, if the source tracked one.
    pub unknown: Option<TypeSnapshot>,
    /// Per-worker counters, indexed by worker id.
    pub workers: Vec<WorkerCountersSnap>,
    /// Drained scheduler events with loss accounting.
    pub events: EventLog,
    /// Packets rejected by wire validation on the RX path.
    pub rx_malformed: u64,
}

impl Snapshot {
    /// Merges another snapshot (e.g. a second engine shard). Slot lists
    /// are padded to the longer of the two.
    pub fn merge(&mut self, other: &Snapshot) {
        if self.types.len() < other.types.len() {
            self.types
                .resize(other.types.len(), TypeSnapshot::default());
        }
        for (a, b) in self.types.iter_mut().zip(other.types.iter()) {
            a.merge(b);
        }
        match (&mut self.unknown, &other.unknown) {
            (Some(a), Some(b)) => a.merge(b),
            (None, Some(b)) => self.unknown = Some(b.clone()),
            _ => {}
        }
        if self.workers.len() < other.workers.len() {
            self.workers
                .resize(other.workers.len(), WorkerCountersSnap::default());
        }
        for (a, b) in self.workers.iter_mut().zip(other.workers.iter()) {
            a.merge(b);
        }
        self.events.merge(&other.events);
        self.rx_malformed += other.rx_malformed;
    }

    /// Total completions across all type slots.
    pub fn completions(&self) -> u64 {
        self.types
            .iter()
            .chain(self.unknown.iter())
            .map(|t| t.counters.completions)
            .sum()
    }

    fn slot_label(&self, i: usize) -> String {
        if i < self.types.len() {
            format!("T{i}")
        } else {
            "UNK".to_string()
        }
    }

    fn slots(&self) -> impl Iterator<Item = (usize, &TypeSnapshot)> {
        self.types
            .iter()
            .enumerate()
            .chain(self.unknown.iter().map(|t| (self.types.len(), t)))
    }

    /// Renders an aligned, human-readable report (latencies in µs).
    pub fn to_text(&self) -> String {
        let us = |ns: u64| ns as f64 / 1_000.0;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "type   count      p50(us)   p99(us)   p99.9(us)  max(us)   disp      steal    spill    drop     expired  q-hwm"
        );
        for (i, t) in self.slots() {
            if t.counters.arrivals == 0 && t.sojourn.count() == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<6} {:<10} {:<9.1} {:<9.1} {:<10.1} {:<9.1} {:<9} {:<8} {:<8} {:<8} {:<8} {:<6}",
                self.slot_label(i),
                t.sojourn.count(),
                us(t.sojourn.quantile(0.50)),
                us(t.sojourn.quantile(0.99)),
                us(t.sojourn.quantile(0.999)),
                us(t.sojourn.max()),
                t.counters.dispatches,
                t.counters.steals,
                t.counters.spillway_hits,
                t.counters.drops,
                t.counters.expired,
                t.counters.queue_depth_hwm,
            );
        }
        let _ = writeln!(
            out,
            "workers: {}",
            self.workers
                .iter()
                .enumerate()
                .map(|(i, w)| {
                    format!(
                        "W{i}={}+{}({}ms)",
                        w.dispatches,
                        w.steals,
                        w.busy_ns / 1_000_000
                    )
                })
                .collect::<Vec<_>>()
                .join(" ")
        );
        if self.rx_malformed > 0 {
            let _ = writeln!(out, "rx_malformed: {}", self.rx_malformed);
        }
        let per_kind = |label: &str, pred: fn(&SchedEvent) -> bool| {
            let n = self.events.events.iter().filter(|(_, e)| pred(e)).count();
            format!("{label}={n}")
        };
        let _ = writeln!(
            out,
            "events: pushed={} kept={} overwritten={} ({} {} {} {} {})",
            self.events.pushed,
            self.events.events.len(),
            self.events.overwritten,
            per_kind("steals", |e| matches!(e, SchedEvent::CycleSteal { .. })),
            per_kind("spillway", |e| matches!(e, SchedEvent::SpillwayHit { .. })),
            per_kind("drops", |e| matches!(e, SchedEvent::Drop { .. })),
            per_kind("expired", |e| matches!(
                e,
                SchedEvent::DeadlineExpired { .. }
            )),
            per_kind("quarantines", |e| matches!(
                e,
                SchedEvent::WorkerQuarantine { .. }
            )),
        );
        // Only the rare, high-signal decisions are listed in full —
        // per-request steal/spillway events are summarized above (the
        // JSON-lines export carries every kept event).
        for (pos, ev) in &self.events.events {
            match ev {
                SchedEvent::ReservationUpdate {
                    now_ns,
                    update_id,
                    trigger_delta_millionths,
                    old_guaranteed,
                    new_guaranteed,
                } => {
                    let n = self.types.len().clamp(1, MAX_MAP_TYPES);
                    let _ = writeln!(
                        out,
                        "  [{pos}] t={:.3}ms reservation_update #{update_id} delta={:.3} cores {:?} -> {:?}",
                        *now_ns as f64 / 1e6,
                        *trigger_delta_millionths as f64 / 1e6,
                        &old_guaranteed[..n],
                        &new_guaranteed[..n],
                    );
                }
                SchedEvent::Drop {
                    now_ns,
                    type_id,
                    queue_depth,
                } => {
                    let _ = writeln!(
                        out,
                        "  [{pos}] t={:.3}ms drop type={type_id} depth={queue_depth}",
                        *now_ns as f64 / 1e6,
                    );
                }
                SchedEvent::WorkerQuarantine {
                    now_ns,
                    worker,
                    type_id,
                    running_ns,
                } => {
                    let _ = writeln!(
                        out,
                        "  [{pos}] t={:.3}ms worker_quarantine W{worker} type={type_id} running={:.3}ms",
                        *now_ns as f64 / 1e6,
                        *running_ns as f64 / 1e6,
                    );
                }
                SchedEvent::WorkerRelease {
                    now_ns,
                    worker,
                    stalled_ns,
                } => {
                    let _ = writeln!(
                        out,
                        "  [{pos}] t={:.3}ms worker_release W{worker} stalled={:.3}ms",
                        *now_ns as f64 / 1e6,
                        *stalled_ns as f64 / 1e6,
                    );
                }
                // Per-request steal/spillway/expiry events are summarized
                // above; the JSON export carries each one in full.
                SchedEvent::CycleSteal { .. }
                | SchedEvent::SpillwayHit { .. }
                | SchedEvent::DeadlineExpired { .. } => {}
            }
        }
        out
    }

    /// Renders JSON lines: one object per type slot, worker, and event,
    /// plus a trailing ring-accounting line. No serde — the schema is
    /// flat enough to emit by hand.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for (i, t) in self.slots() {
            let unknown = i >= self.types.len();
            let _ = writeln!(
                out,
                "{{\"kind\":\"type\",\"id\":{},\"unknown\":{},\"count\":{},\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"max_ns\":{},\"mean_ns\":{:.1},\"arrivals\":{},\"dispatches\":{},\"steals\":{},\"spillway_hits\":{},\"drops\":{},\"expired\":{},\"completions\":{},\"queue_depth_hwm\":{}}}",
                i,
                unknown,
                t.sojourn.count(),
                t.sojourn.quantile(0.50),
                t.sojourn.quantile(0.99),
                t.sojourn.quantile(0.999),
                t.sojourn.max(),
                t.sojourn.mean(),
                t.counters.arrivals,
                t.counters.dispatches,
                t.counters.steals,
                t.counters.spillway_hits,
                t.counters.drops,
                t.counters.expired,
                t.counters.completions,
                t.counters.queue_depth_hwm,
            );
        }
        for (i, w) in self.workers.iter().enumerate() {
            let _ = writeln!(
                out,
                "{{\"kind\":\"worker\",\"id\":{},\"dispatches\":{},\"steals\":{},\"completions\":{},\"busy_ns\":{},\"quarantines\":{},\"tx_give_ups\":{}}}",
                i, w.dispatches, w.steals, w.completions, w.busy_ns, w.quarantines, w.tx_give_ups,
            );
        }
        for (pos, ev) in &self.events.events {
            match ev {
                SchedEvent::ReservationUpdate {
                    now_ns,
                    update_id,
                    trigger_delta_millionths,
                    old_guaranteed,
                    new_guaranteed,
                } => {
                    let fmt_map = |m: &[u8; MAX_MAP_TYPES]| {
                        m.iter()
                            .map(|v| v.to_string())
                            .collect::<Vec<_>>()
                            .join(",")
                    };
                    let _ = writeln!(
                        out,
                        "{{\"kind\":\"event\",\"pos\":{pos},\"event\":\"reservation_update\",\"now_ns\":{now_ns},\"update_id\":{update_id},\"trigger_delta_millionths\":{trigger_delta_millionths},\"old_guaranteed\":[{}],\"new_guaranteed\":[{}]}}",
                        fmt_map(old_guaranteed),
                        fmt_map(new_guaranteed),
                    );
                }
                SchedEvent::CycleSteal {
                    now_ns,
                    type_id,
                    worker,
                } => {
                    let _ = writeln!(
                        out,
                        "{{\"kind\":\"event\",\"pos\":{pos},\"event\":\"cycle_steal\",\"now_ns\":{now_ns},\"type_id\":{type_id},\"worker\":{worker}}}",
                    );
                }
                SchedEvent::SpillwayHit {
                    now_ns,
                    type_id,
                    worker,
                } => {
                    let _ = writeln!(
                        out,
                        "{{\"kind\":\"event\",\"pos\":{pos},\"event\":\"spillway_hit\",\"now_ns\":{now_ns},\"type_id\":{type_id},\"worker\":{worker}}}",
                    );
                }
                SchedEvent::Drop {
                    now_ns,
                    type_id,
                    queue_depth,
                } => {
                    let _ = writeln!(
                        out,
                        "{{\"kind\":\"event\",\"pos\":{pos},\"event\":\"drop\",\"now_ns\":{now_ns},\"type_id\":{type_id},\"queue_depth\":{queue_depth}}}",
                    );
                }
                SchedEvent::DeadlineExpired {
                    now_ns,
                    type_id,
                    waited_ns,
                } => {
                    let _ = writeln!(
                        out,
                        "{{\"kind\":\"event\",\"pos\":{pos},\"event\":\"deadline_expired\",\"now_ns\":{now_ns},\"type_id\":{type_id},\"waited_ns\":{waited_ns}}}",
                    );
                }
                SchedEvent::WorkerQuarantine {
                    now_ns,
                    worker,
                    type_id,
                    running_ns,
                } => {
                    let _ = writeln!(
                        out,
                        "{{\"kind\":\"event\",\"pos\":{pos},\"event\":\"worker_quarantine\",\"now_ns\":{now_ns},\"worker\":{worker},\"type_id\":{type_id},\"running_ns\":{running_ns}}}",
                    );
                }
                SchedEvent::WorkerRelease {
                    now_ns,
                    worker,
                    stalled_ns,
                } => {
                    let _ = writeln!(
                        out,
                        "{{\"kind\":\"event\",\"pos\":{pos},\"event\":\"worker_release\",\"now_ns\":{now_ns},\"worker\":{worker},\"stalled_ns\":{stalled_ns}}}",
                    );
                }
            }
        }
        let _ = writeln!(
            out,
            "{{\"kind\":\"net\",\"rx_malformed\":{}}}",
            self.rx_malformed,
        );
        let _ = writeln!(
            out,
            "{{\"kind\":\"ring\",\"pushed\":{},\"kept\":{},\"overwritten\":{}}}",
            self.events.pushed,
            self.events.events.len(),
            self.events.overwritten,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_telemetry() -> Telemetry {
        let t = Telemetry::new(TelemetryConfig::new(2, 3));
        for i in 0..100u64 {
            let ty = (i % 2) as usize;
            t.record_arrival(ty);
            t.record_queue_depth(ty, i % 7);
            t.record_dispatch(
                ty,
                (i % 3) as usize,
                if i % 10 == 0 {
                    DispatchKind::Stolen
                } else {
                    DispatchKind::Reserved
                },
                i * 1000,
            );
            t.record_completion(ty, (i % 3) as usize, 5_000 + i * 10, 1_000);
        }
        t.record_drop(1, 42, 55_000);
        t.record_expired(0, 120_000, 56_000);
        t.record_quarantine(2, 1, 4_000_000, 57_000);
        t.record_release(2, 6_000_000, 58_000);
        t.record_tx_give_up(2);
        t.record_reservation_update(60_000, 1, 250_000, &[1, 3], &[2, 2]);
        t
    }

    #[test]
    fn snapshot_reflects_recorded_activity() {
        let t = sample_telemetry();
        let s = t.snapshot();
        assert_eq!(s.types.len(), 2);
        assert_eq!(s.workers.len(), 3);
        assert_eq!(s.completions(), 100);
        assert_eq!(s.types[0].counters.arrivals, 50);
        assert_eq!(s.types[1].counters.drops, 1);
        assert!(s.types[0].sojourn.quantile(0.5) >= 5_000);
        let steals: u64 = s.types.iter().map(|t| t.counters.steals).sum();
        assert_eq!(steals, 10);
        assert!(s
            .events
            .events
            .iter()
            .any(|(_, e)| matches!(e, SchedEvent::ReservationUpdate { update_id: 1, .. })));
    }

    #[test]
    fn unknown_and_out_of_range_types_share_the_last_slot() {
        let t = Telemetry::new(TelemetryConfig::new(2, 1));
        t.record_arrival(2);
        t.record_arrival(999);
        t.record_completion(17, 0, 100, 50);
        let s = t.snapshot();
        let unk = s.unknown.as_ref().unwrap();
        assert_eq!(unk.counters.arrivals, 2);
        assert_eq!(unk.counters.completions, 1);
    }

    #[test]
    fn rx_malformed_counts_merges_and_exports() {
        let t = Telemetry::new(TelemetryConfig::new(1, 1));
        t.record_rx_malformed();
        t.record_rx_malformed();
        let s = t.snapshot();
        assert_eq!(s.rx_malformed, 2);
        let mut twice = s.clone();
        twice.merge(&s);
        assert_eq!(twice.rx_malformed, 4);
        assert!(s.to_text().contains("rx_malformed: 2"));
        assert!(s.to_json_lines().contains("\"rx_malformed\":2"));
        // A clean snapshot keeps the text report noise-free.
        let clean = Telemetry::new(TelemetryConfig::new(1, 1)).snapshot();
        assert!(!clean.to_text().contains("rx_malformed"));
    }

    #[test]
    fn merge_pads_and_sums() {
        let a = sample_telemetry().snapshot();
        let mut small = Snapshot::default();
        small.merge(&a);
        assert_eq!(small, a);
        let mut twice = a.clone();
        twice.merge(&a);
        assert_eq!(twice.completions(), 200);
        assert_eq!(twice.types[0].counters.arrivals, 100);
        assert_eq!(twice.events.pushed, a.events.pushed * 2);
        assert_eq!(twice.workers[1].completions, a.workers[1].completions * 2);
    }

    #[test]
    fn text_export_mentions_percentiles_and_events() {
        let s = sample_telemetry().snapshot();
        let text = s.to_text();
        assert!(text.contains("p99.9"));
        assert!(text.contains("T0"));
        assert!(text.contains("reservation_update #1"));
        assert!(text.contains("overwritten=0"));
    }

    #[test]
    fn json_lines_are_valid_enough_to_grep() {
        let s = sample_telemetry().snapshot();
        let json = s.to_json_lines();
        for line in json.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "bad line {line}"
            );
            // Balanced braces/brackets on every line (flat objects).
            let opens = line.matches('{').count();
            assert_eq!(opens, line.matches('}').count());
            assert_eq!(line.matches('[').count(), line.matches(']').count());
        }
        assert!(json.contains("\"event\":\"reservation_update\""));
        assert!(json.contains("\"old_guaranteed\":[1,3"));
        assert!(json.contains("\"new_guaranteed\":[2,2"));
        assert!(json.contains("\"kind\":\"ring\""));
    }
}
