//! Per-type and per-worker counter sets.
//!
//! Each set lives in its own [`CachePadded`] slot so two workers (or two
//! request types served by different cores) never contend on a cache
//! line. Every increment is a single relaxed atomic RMW — no locks, no
//! allocation — cheap enough for the dispatch hot loop.

use crate::sync::{AtomicU64, Ordering};

/// Counters tracked per request type.
#[derive(Debug, Default)]
pub struct TypeCounters {
    /// Requests classified and enqueued as this type.
    pub arrivals: AtomicU64,
    /// Requests dispatched from this type's queue to a reserved worker.
    pub dispatches: AtomicU64,
    /// Requests of this type served by a cycle-steal (a worker outside
    /// the type's guaranteed set).
    pub steals: AtomicU64,
    /// Requests of this type routed through the spillway path.
    pub spillway_hits: AtomicU64,
    /// Requests of this type dropped (typed queue full).
    pub drops: AtomicU64,
    /// Requests of this type expired by deadline shedding (queueing delay
    /// exceeded the type's deadline) or shed at shutdown — the `timeouts`
    /// counter family of overload control.
    pub expired: AtomicU64,
    /// Requests of this type completed by a worker.
    pub completions: AtomicU64,
    /// High-water mark of this type's queue depth.
    pub queue_depth_hwm: AtomicU64,
}

impl TypeCounters {
    /// Bumps the queue-depth high-water mark if `depth` exceeds it.
    #[inline]
    pub fn observe_queue_depth(&self, depth: u64) {
        // audit:ordering: monotone max RMW on a lone statistic — no other
        // data is published through it
        self.queue_depth_hwm.fetch_max(depth, Ordering::Relaxed);
    }

    /// Copies the current values into a plain snapshot.
    ///
    /// Every load below is Relaxed: each counter is an independent
    /// monotone statistic, nothing is published through them, and a
    /// snapshot is approximate under load by design (exact once the
    /// caller happens-after the recorders, e.g. after joining workers).
    pub fn snapshot(&self) -> TypeCountersSnap {
        TypeCountersSnap {
            // audit:ordering: independent statistics reads (see above)
            arrivals: self.arrivals.load(Ordering::Relaxed),
            dispatches: self.dispatches.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            // audit:ordering: independent statistics reads (see above)
            spillway_hits: self.spillway_hits.load(Ordering::Relaxed),
            drops: self.drops.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            // audit:ordering: independent statistics reads (see above)
            completions: self.completions.load(Ordering::Relaxed),
            queue_depth_hwm: self.queue_depth_hwm.load(Ordering::Relaxed),
        }
    }
}

/// Frozen copy of [`TypeCounters`] (same field meanings).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct TypeCountersSnap {
    pub arrivals: u64,
    pub dispatches: u64,
    pub steals: u64,
    pub spillway_hits: u64,
    pub drops: u64,
    pub expired: u64,
    pub completions: u64,
    pub queue_depth_hwm: u64,
}

impl TypeCountersSnap {
    /// Merges another snapshot into this one (sums; HWM takes the max).
    pub fn merge(&mut self, other: &TypeCountersSnap) {
        self.arrivals += other.arrivals;
        self.dispatches += other.dispatches;
        self.steals += other.steals;
        self.spillway_hits += other.spillway_hits;
        self.drops += other.drops;
        self.expired += other.expired;
        self.completions += other.completions;
        self.queue_depth_hwm = self.queue_depth_hwm.max(other.queue_depth_hwm);
    }
}

/// Counters tracked per worker core.
#[derive(Debug, Default)]
pub struct WorkerCounters {
    /// Requests dispatched to this worker from its reserved types.
    pub dispatches: AtomicU64,
    /// Requests this worker served via cycle-steal or spillway.
    pub steals: AtomicU64,
    /// Requests this worker completed.
    pub completions: AtomicU64,
    /// Nanoseconds this worker spent executing handlers (recorded on the
    /// worker's own completion path, so it reflects measured service).
    pub busy_ns: AtomicU64,
    /// Times this worker was quarantined (in-flight request ran far past
    /// its type's profiled mean service time).
    pub quarantines: AtomicU64,
    /// Transmissions this worker abandoned after bounded send retries.
    pub tx_give_ups: AtomicU64,
}

impl WorkerCounters {
    /// Copies the current values into a plain snapshot. Relaxed for the
    /// same reason as [`TypeCounters::snapshot`]: independent monotone
    /// statistics, approximate under load by design.
    pub fn snapshot(&self) -> WorkerCountersSnap {
        WorkerCountersSnap {
            // audit:ordering: independent statistics reads (see above)
            dispatches: self.dispatches.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            completions: self.completions.load(Ordering::Relaxed),
            // audit:ordering: independent statistics reads (see above)
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
            quarantines: self.quarantines.load(Ordering::Relaxed),
            tx_give_ups: self.tx_give_ups.load(Ordering::Relaxed),
        }
    }
}

/// Frozen copy of [`WorkerCounters`] (same field meanings).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct WorkerCountersSnap {
    pub dispatches: u64,
    pub steals: u64,
    pub completions: u64,
    pub busy_ns: u64,
    pub quarantines: u64,
    pub tx_give_ups: u64,
}

impl WorkerCountersSnap {
    /// Merges another snapshot into this one (field-wise sums).
    pub fn merge(&mut self, other: &WorkerCountersSnap) {
        self.dispatches += other.dispatches;
        self.steals += other.steals;
        self.completions += other.completions;
        self.busy_ns += other.busy_ns;
        self.quarantines += other.quarantines;
        self.tx_give_ups += other.tx_give_ups;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hwm_is_monotone() {
        let c = TypeCounters::default();
        c.observe_queue_depth(5);
        c.observe_queue_depth(3);
        assert_eq!(c.snapshot().queue_depth_hwm, 5);
        c.observe_queue_depth(9);
        assert_eq!(c.snapshot().queue_depth_hwm, 9);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = TypeCountersSnap {
            arrivals: 1,
            dispatches: 2,
            steals: 3,
            spillway_hits: 4,
            drops: 5,
            expired: 6,
            completions: 6,
            queue_depth_hwm: 7,
        };
        let b = TypeCountersSnap {
            arrivals: 10,
            dispatches: 20,
            steals: 30,
            spillway_hits: 40,
            drops: 50,
            expired: 1,
            completions: 60,
            queue_depth_hwm: 3,
        };
        a.merge(&b);
        assert_eq!(a.arrivals, 11);
        assert_eq!(a.expired, 7);
        assert_eq!(a.completions, 66);
        assert_eq!(a.queue_depth_hwm, 7);
    }

    #[test]
    fn worker_merge_sums_overload_counters() {
        let w = WorkerCounters::default();
        w.quarantines.fetch_add(2, Ordering::Relaxed);
        w.tx_give_ups.fetch_add(3, Ordering::Relaxed);
        let mut a = w.snapshot();
        a.merge(&w.snapshot());
        assert_eq!(a.quarantines, 4);
        assert_eq!(a.tx_give_ups, 6);
    }
}
