//! Cache-line padding for hot shared state.
//!
//! A local stand-in for `crossbeam_utils::CachePadded`, so the workspace
//! carries no registry dependency. 128-byte alignment covers the
//! spatial-prefetcher pair on x86 and the 128-byte lines of Apple silicon
//! and some POWER parts; on 64-byte-line machines it simply wastes one
//! extra line per slot, which is the point of padding anyway.

use core::ops::{Deref, DerefMut};

/// Pads and aligns `T` to 128 bytes so neighboring slots never share a
/// cache line (no false sharing between per-worker or per-type slots).
///
/// # Examples
///
/// ```
/// use persephone_telemetry::CachePadded;
/// use std::sync::atomic::AtomicU64;
///
/// let slot = CachePadded::new(AtomicU64::new(0));
/// assert_eq!(core::mem::align_of_val(&slot), 128);
/// ```
#[derive(Clone, Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in padding.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_128_byte_aligned_and_sized() {
        assert_eq!(core::mem::align_of::<CachePadded<u8>>(), 128);
        assert_eq!(core::mem::size_of::<CachePadded<u8>>(), 128);
        assert_eq!(core::mem::size_of::<CachePadded<[u64; 17]>>(), 256);
    }

    #[test]
    fn deref_and_into_inner_round_trip() {
        let mut p = CachePadded::new(41u64);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }
}
