//! Bounded, lock-free ring of scheduler decision events.
//!
//! The ring records *why* the scheduler did what it did — reservation
//! updates with the old→new guaranteed-core map, cycle-steals, spillway
//! hits, and drops — without ever blocking the dispatch loop. Each slot
//! is a seqlock over a fixed block of `AtomicU64` words:
//!
//! * A writer claims a position with one `fetch_add` on the head, CAS's
//!   the slot's sequence from its previous-lap value to odd (dropping
//!   the event if another writer holds the slot — see
//!   [`EventRing::push`]), stores the encoded event words, then
//!   publishes an even sequence derived from the position.
//! * A reader loads the sequence, copies the words, and re-checks the
//!   sequence; any concurrent overwrite changes the sequence and the
//!   read is discarded.
//!
//! Because the published sequence encodes the absolute position, a
//! collector can tell exactly how many events were overwritten (lost)
//! since the last drain — overwrites are *detectable*, never silent.
//! Pushing is wait-free for a single writer and lock-free for many; no
//! path allocates.

use crate::padded::CachePadded;
use crate::sync::{fence, AtomicU64, Ordering};

/// Fixed number of payload words per event.
pub const EVENT_WORDS: usize = 8;

/// Per-type guaranteed-core counts, truncated to the first
/// [`MAX_MAP_TYPES`] request types (plenty for the paper's workloads).
pub const MAX_MAP_TYPES: usize = 16;

/// A scheduler decision worth remembering.
///
/// Identifiers are raw indices (`u32` type ids, `u32` worker ids,
/// nanosecond timestamps) so the crate stays dependency-free.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // timestamp/id fields are self-describing
pub enum SchedEvent {
    /// A new reservation was committed and installed.
    ReservationUpdate {
        /// Engine clock at install time, in nanoseconds.
        now_ns: u64,
        /// Monotone id of this update (the engine's update counter).
        update_id: u64,
        /// Demand shift that triggered the update, in millionths of a
        /// core (the max per-type |Δ| the profiler observed).
        trigger_delta_millionths: u64,
        /// Guaranteed cores per type *before* the update.
        old_guaranteed: [u8; MAX_MAP_TYPES],
        /// Guaranteed cores per type *after* the update.
        new_guaranteed: [u8; MAX_MAP_TYPES],
    },
    /// A request was served by a worker outside its type's guaranteed
    /// set (work conservation kicking in).
    CycleSteal {
        now_ns: u64,
        type_id: u32,
        worker: u32,
    },
    /// A request was routed through the spillway path.
    SpillwayHit {
        now_ns: u64,
        type_id: u32,
        worker: u32,
    },
    /// A request was dropped because its typed queue was full.
    Drop {
        now_ns: u64,
        type_id: u32,
        queue_depth: u64,
    },
    /// A head-of-queue request's queueing delay exceeded its type's
    /// deadline and was shed before dispatch (overload control).
    DeadlineExpired {
        now_ns: u64,
        type_id: u32,
        /// How long the request had waited when it was expired.
        waited_ns: u64,
    },
    /// A worker's in-flight request ran far beyond its type's profiled
    /// mean; the worker was excluded from the free pool.
    WorkerQuarantine {
        now_ns: u64,
        worker: u32,
        type_id: u32,
        /// How long the in-flight request had been running.
        running_ns: u64,
    },
    /// A quarantined worker finally completed and rejoined the pool.
    WorkerRelease {
        now_ns: u64,
        worker: u32,
        /// Total wall time the releasing request spent on the worker.
        stalled_ns: u64,
    },
}

const TAG_RESERVATION: u64 = 1;
const TAG_STEAL: u64 = 2;
const TAG_SPILLWAY: u64 = 3;
const TAG_DROP: u64 = 4;
const TAG_EXPIRED: u64 = 5;
const TAG_QUARANTINE: u64 = 6;
const TAG_RELEASE: u64 = 7;

fn pack_map(map: &[u8; MAX_MAP_TYPES]) -> [u64; 2] {
    let mut words = [0u64; 2];
    for (i, &b) in map.iter().enumerate() {
        // audit:allow(A1): i < MAX_MAP_TYPES = 16, so i/8 < 2 = words.len()
        words[i / 8] |= (b as u64) << ((i % 8) * 8);
    }
    words
}

fn unpack_map(words: [u64; 2]) -> [u8; MAX_MAP_TYPES] {
    let mut map = [0u8; MAX_MAP_TYPES];
    for (i, b) in map.iter_mut().enumerate() {
        // In bounds like pack_map's mirror image; only the cold collect
        // path decodes, so no audit suppression is needed here.
        *b = (words[i / 8] >> ((i % 8) * 8)) as u8;
    }
    map
}

impl SchedEvent {
    /// Encodes into a fixed block of words (word 0 is the tag).
    pub fn encode(&self) -> [u64; EVENT_WORDS] {
        let mut w = [0u64; EVENT_WORDS];
        match *self {
            SchedEvent::ReservationUpdate {
                now_ns,
                update_id,
                trigger_delta_millionths,
                old_guaranteed,
                new_guaranteed,
            } => {
                w[0] = TAG_RESERVATION;
                w[1] = now_ns;
                w[2] = update_id;
                w[3] = trigger_delta_millionths;
                let old = pack_map(&old_guaranteed);
                let new = pack_map(&new_guaranteed);
                w[4] = old[0];
                w[5] = old[1];
                w[6] = new[0];
                w[7] = new[1];
            }
            SchedEvent::CycleSteal {
                now_ns,
                type_id,
                worker,
            } => {
                w[0] = TAG_STEAL;
                w[1] = now_ns;
                w[2] = type_id as u64;
                w[3] = worker as u64;
            }
            SchedEvent::SpillwayHit {
                now_ns,
                type_id,
                worker,
            } => {
                w[0] = TAG_SPILLWAY;
                w[1] = now_ns;
                w[2] = type_id as u64;
                w[3] = worker as u64;
            }
            SchedEvent::Drop {
                now_ns,
                type_id,
                queue_depth,
            } => {
                w[0] = TAG_DROP;
                w[1] = now_ns;
                w[2] = type_id as u64;
                w[3] = queue_depth;
            }
            SchedEvent::DeadlineExpired {
                now_ns,
                type_id,
                waited_ns,
            } => {
                w[0] = TAG_EXPIRED;
                w[1] = now_ns;
                w[2] = type_id as u64;
                w[3] = waited_ns;
            }
            SchedEvent::WorkerQuarantine {
                now_ns,
                worker,
                type_id,
                running_ns,
            } => {
                w[0] = TAG_QUARANTINE;
                w[1] = now_ns;
                w[2] = worker as u64;
                w[3] = type_id as u64;
                w[4] = running_ns;
            }
            SchedEvent::WorkerRelease {
                now_ns,
                worker,
                stalled_ns,
            } => {
                w[0] = TAG_RELEASE;
                w[1] = now_ns;
                w[2] = worker as u64;
                w[3] = stalled_ns;
            }
        }
        w
    }

    /// Decodes a word block; `None` on an unknown tag (e.g. a slot that
    /// was never written).
    pub fn decode(w: &[u64; EVENT_WORDS]) -> Option<SchedEvent> {
        match w[0] {
            TAG_RESERVATION => Some(SchedEvent::ReservationUpdate {
                now_ns: w[1],
                update_id: w[2],
                trigger_delta_millionths: w[3],
                old_guaranteed: unpack_map([w[4], w[5]]),
                new_guaranteed: unpack_map([w[6], w[7]]),
            }),
            TAG_STEAL => Some(SchedEvent::CycleSteal {
                now_ns: w[1],
                type_id: w[2] as u32,
                worker: w[3] as u32,
            }),
            TAG_SPILLWAY => Some(SchedEvent::SpillwayHit {
                now_ns: w[1],
                type_id: w[2] as u32,
                worker: w[3] as u32,
            }),
            TAG_DROP => Some(SchedEvent::Drop {
                now_ns: w[1],
                type_id: w[2] as u32,
                queue_depth: w[3],
            }),
            TAG_EXPIRED => Some(SchedEvent::DeadlineExpired {
                now_ns: w[1],
                type_id: w[2] as u32,
                waited_ns: w[3],
            }),
            TAG_QUARANTINE => Some(SchedEvent::WorkerQuarantine {
                now_ns: w[1],
                worker: w[2] as u32,
                type_id: w[3] as u32,
                running_ns: w[4],
            }),
            TAG_RELEASE => Some(SchedEvent::WorkerRelease {
                now_ns: w[1],
                worker: w[2] as u32,
                stalled_ns: w[3],
            }),
            _ => None,
        }
    }

    /// Short kind label, used by the exporters.
    pub fn kind(&self) -> &'static str {
        match self {
            SchedEvent::ReservationUpdate { .. } => "reservation_update",
            SchedEvent::CycleSteal { .. } => "cycle_steal",
            SchedEvent::SpillwayHit { .. } => "spillway_hit",
            SchedEvent::Drop { .. } => "drop",
            SchedEvent::DeadlineExpired { .. } => "deadline_expired",
            SchedEvent::WorkerQuarantine { .. } => "worker_quarantine",
            SchedEvent::WorkerRelease { .. } => "worker_release",
        }
    }
}

#[derive(Debug)]
struct Slot {
    /// Seqlock word: `2*pos + 1` while position `pos` is being written,
    /// `2*pos + 2` once it is published, 0 if never written.
    seq: AtomicU64,
    words: [AtomicU64; EVENT_WORDS],
}

impl Slot {
    fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            words: [const { AtomicU64::new(0) }; EVENT_WORDS],
        }
    }
}

/// The bounded event ring. See the module docs for the protocol.
#[derive(Debug)]
pub struct EventRing {
    slots: Box<[CachePadded<Slot>]>,
    mask: u64,
    head: CachePadded<AtomicU64>,
}

impl EventRing {
    /// Creates a ring holding the last `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity` is a power of two.
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity.is_power_of_two() && capacity > 0,
            "ring capacity must be a power of two, got {capacity}"
        );
        let slots: Box<[CachePadded<Slot>]> = (0..capacity)
            .map(|_| CachePadded::new(Slot::new()))
            .collect();
        EventRing {
            slots,
            mask: capacity as u64 - 1,
            head: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever pushed (the next position to claim).
    pub fn pushed(&self) -> u64 {
        // audit:ordering: statistics read of a monotone claim counter —
        // per-slot seqlock sequences carry the real synchronization
        self.head.load(Ordering::Relaxed)
    }

    /// Records an event, overwriting the oldest if the ring is full.
    /// Never blocks, never allocates; returns the event's position.
    ///
    /// If a writer stalls for an entire lap, the writer that laps it
    /// collides with it on the same slot. A classic seqlock is
    /// single-writer, and two writers blindly storing odd/even
    /// sequences can publish a *blend* of their payload words under an
    /// even sequence — the model checker found exactly that schedule
    /// (see `tests/model_seqlock.rs`). The claim below is therefore a
    /// CAS on the previous generation's published sequence: whichever
    /// colliding writer loses simply drops its event, which readers
    /// count as lost via the sequence-gap accounting. Losses stay
    /// detectable; blends become impossible.
    pub fn push(&self, ev: &SchedEvent) -> u64 {
        // audit:ordering: the RMW only claims a position; publication is
        // ordered by the slot's seqlock (Release fence + seq stores below)
        let pos = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(pos & self.mask) as usize];
        let cap = self.slots.len() as u64;
        // The slot is claimable only in its quiescent previous-lap
        // state: published `2*(pos-cap)+2`, or 0 on the first lap. Any
        // other value means a lapped writer is mid-write (odd) or a
        // newer writer already took the slot (larger) — back off.
        let expected = if pos >= cap { 2 * (pos - cap) + 2 } else { 0 };
        if slot
            .seq
            // audit:ordering: the CAS only claims the slot; the Release
            // fence below orders the payload against the odd sequence
            .compare_exchange(expected, 2 * pos + 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return pos;
        }
        // The slot is marked dirty; fence so no payload store can become
        // visible before the odd sequence (classic seqlock writer).
        fence(Ordering::Release);
        for (w, v) in slot.words.iter().zip(ev.encode()) {
            // audit:ordering: seqlock payload stores — ordered by the
            // Release fence above and the seq Release store below
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.store(2 * pos + 2, Ordering::Release);
        pos
    }

    /// Drains a consistent copy of the ring's surviving contents.
    ///
    /// Events arrive ordered by position. Events pushed before
    /// `from_pos`, overwritten by newer pushes, or caught mid-write are
    /// counted in [`EventLog::overwritten`] / skipped, so the caller can
    /// always reconcile `collected + lost == pushed - from_pos`.
    ///
    /// Collector-thread lane (writers never call this) — cold marks the
    /// audit frontier; the builds-a-Vec cost lands off the record path.
    #[cold]
    pub fn collect_from(&self, from_pos: u64) -> EventLog {
        let head = self.head.load(Ordering::Acquire);
        let lo = from_pos.max(head.saturating_sub(self.slots.len() as u64));
        let mut events = Vec::with_capacity((head - lo) as usize);
        let mut torn = 0u64;
        for pos in lo..head {
            let slot = &self.slots[(pos & self.mask) as usize];
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 != 2 * pos + 2 {
                // Overwritten by a newer generation or still being
                // written — either way this position is lost.
                torn += 1;
                continue;
            }
            let mut words = [0u64; EVENT_WORDS];
            for (dst, src) in words.iter_mut().zip(slot.words.iter()) {
                // audit:ordering: seqlock payload reads — validated by the
                // Acquire fence and seq re-check below; torn reads retry
                *dst = src.load(Ordering::Relaxed);
            }
            fence(Ordering::Acquire);
            // audit:ordering: the Acquire fence above orders this re-check
            // after the payload reads (classic seqlock reader)
            let s2 = slot.seq.load(Ordering::Relaxed);
            if s2 != s1 {
                torn += 1;
                continue;
            }
            if let Some(ev) = SchedEvent::decode(&words) {
                events.push((pos, ev));
            } else {
                torn += 1;
            }
        }
        EventLog {
            events,
            pushed: head,
            overwritten: (lo - from_pos) + torn,
        }
    }

    /// Drains everything the ring still holds (see [`collect_from`]).
    ///
    /// [`collect_from`]: EventRing::collect_from
    pub fn collect(&self) -> EventLog {
        self.collect_from(0)
    }
}

/// A drained, owned copy of the event ring's contents.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EventLog {
    /// Surviving events, each tagged with its absolute position.
    pub events: Vec<(u64, SchedEvent)>,
    /// Total events pushed to the ring over its lifetime.
    pub pushed: u64,
    /// Events in the requested range that were lost to overwrites (or
    /// torn by a concurrent writer) — sequence-gap accounting.
    pub overwritten: u64,
}

impl EventLog {
    /// Merges another log (e.g. from a second engine shard): events are
    /// interleaved by position, loss counts add up.
    pub fn merge(&mut self, other: &EventLog) {
        self.events.extend(other.events.iter().cloned());
        self.events.sort_by_key(|(pos, _)| *pos);
        self.pushed += other.pushed;
        self.overwritten += other.overwritten;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steal(n: u64) -> SchedEvent {
        SchedEvent::CycleSteal {
            now_ns: n,
            type_id: (n % 3) as u32,
            worker: (n % 5) as u32,
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let evs = [
            SchedEvent::ReservationUpdate {
                now_ns: 123,
                update_id: 7,
                trigger_delta_millionths: 250_000,
                old_guaranteed: [1, 2, 3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 255],
                new_guaranteed: [2, 2, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1],
            },
            steal(42),
            SchedEvent::SpillwayHit {
                now_ns: 9,
                type_id: 1,
                worker: 3,
            },
            SchedEvent::Drop {
                now_ns: 77,
                type_id: 2,
                queue_depth: 1024,
            },
            SchedEvent::DeadlineExpired {
                now_ns: 88,
                type_id: 0,
                waited_ns: 150_000,
            },
            SchedEvent::WorkerQuarantine {
                now_ns: 99,
                worker: 4,
                type_id: 1,
                running_ns: 5_000_000,
            },
            SchedEvent::WorkerRelease {
                now_ns: 111,
                worker: 4,
                stalled_ns: 9_000_000,
            },
        ];
        for ev in evs {
            assert_eq!(SchedEvent::decode(&ev.encode()), Some(ev));
        }
        assert_eq!(SchedEvent::decode(&[99, 0, 0, 0, 0, 0, 0, 0]), None);
    }

    #[test]
    fn collects_in_order_without_loss_when_not_full() {
        let ring = EventRing::new(8);
        for n in 0..5 {
            ring.push(&steal(n));
        }
        let log = ring.collect();
        assert_eq!(log.pushed, 5);
        assert_eq!(log.overwritten, 0);
        let got: Vec<u64> = log.events.iter().map(|(p, _)| *p).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(log.events[3].1, steal(3));
    }

    #[test]
    fn overwrites_are_detected_exactly() {
        let ring = EventRing::new(4);
        for n in 0..11 {
            ring.push(&steal(n));
        }
        let log = ring.collect();
        assert_eq!(log.pushed, 11);
        // 4 slots survive; positions 0..7 were overwritten.
        assert_eq!(log.overwritten, 7);
        let got: Vec<u64> = log.events.iter().map(|(p, _)| *p).collect();
        assert_eq!(got, vec![7, 8, 9, 10]);
    }

    #[test]
    fn collect_from_skips_already_drained_positions() {
        let ring = EventRing::new(8);
        for n in 0..6 {
            ring.push(&steal(n));
        }
        let log = ring.collect_from(4);
        assert_eq!(log.overwritten, 0);
        let got: Vec<u64> = log.events.iter().map(|(p, _)| *p).collect();
        assert_eq!(got, vec![4, 5]);
    }

    #[test]
    fn concurrent_push_and_collect_never_tears() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let ring = Arc::new(EventRing::new(16));
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..2)
            .map(|t| {
                let ring = ring.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut n = t;
                    while !stop.load(Ordering::Relaxed) {
                        ring.push(&steal(n));
                        n += 2;
                    }
                })
            })
            .collect();
        let mut total_seen = 0u64;
        for _ in 0..200 {
            let log = ring.collect();
            total_seen += log.events.len() as u64;
            for (_, ev) in &log.events {
                // Decoded events must be well-formed steals, never a mix
                // of two writes.
                match ev {
                    SchedEvent::CycleSteal {
                        now_ns,
                        type_id,
                        worker,
                    } => {
                        assert_eq!(*type_id as u64, now_ns % 3);
                        assert_eq!(*worker as u64, now_ns % 5);
                    }
                    other => panic!("unexpected event {other:?}"),
                }
            }
            // Accounting always reconciles against the head we saw.
            assert_eq!(log.events.len() as u64 + log.overwritten, log.pushed);
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        assert!(total_seen > 0);
    }
}
