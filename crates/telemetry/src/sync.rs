//! Synchronization facade: std atomics normally, instrumented atomics
//! under `--features model-check`.
//!
//! The seqlock event ring ([`crate::ring`]), the counter sets
//! ([`crate::counters`]), and the shared histogram ([`crate::hist`])
//! import `AtomicU64`/`Ordering`/`fence` from here, so the exact code
//! the dispatcher runs can also run inside `persephone_check::model`,
//! where relaxed loads are offered stale-but-coherent values and the
//! seqlock's torn-read detection is exercised for real. In a normal
//! build everything is a plain `core::sync::atomic` re-export — zero
//! cost, and `Ordering` is the same type in both modes so callers in
//! other crates never notice.

#[cfg(feature = "model-check")]
pub use persephone_check::sync::atomic::{fence, AtomicU64, Ordering};

#[cfg(not(feature = "model-check"))]
pub use core::sync::atomic::{fence, AtomicU64, Ordering};
