//! Latency, slowdown, and utilization metrics (paper §5.1).
//!
//! Two performance views, matching the paper:
//!
//! * **slowdown** — time spent at the server divided by pure service time,
//!   taken across all requests (the p99.9 drives every figure's first
//!   column);
//! * **typed tail latency** — a percentile over only one type's response
//!   times.
//!
//! Completions whose *arrival* falls inside the warm-up window are
//! discarded ("we discard the first 10 % of samples", §5.1).
//!
//! Samples land in the shared [`LogHist`] sketch (O(1) memory per type,
//! ≈0.8 % relative quantile error at the default precision) instead of
//! unbounded per-request vectors; slowdowns are stored in fixed-point
//! millionths-free "millis" (×1000) so they fit the integer histogram.

use persephone_core::time::Nanos;
use persephone_core::types::TypeId;
use persephone_telemetry::hist::{LogHist, DEFAULT_PRECISION_BITS};

/// Fixed-point scale for slowdowns stored in a [`LogHist`].
const SLOWDOWN_SCALE: f64 = 1_000.0;

/// Per-type histogram pair.
#[derive(Clone, Debug)]
struct TypeRec {
    sojourn_ns: LogHist,
    /// Slowdown ×1000, clamped to ≥ 1 (a slowdown can never be < 1.0,
    /// but integer division could round to 0 for degenerate inputs).
    slowdown_millis: LogHist,
}

impl Default for TypeRec {
    fn default() -> Self {
        TypeRec {
            sojourn_ns: LogHist::new(DEFAULT_PRECISION_BITS),
            slowdown_millis: LogHist::new(DEFAULT_PRECISION_BITS),
        }
    }
}

/// Collects per-request completions during a simulation run.
#[derive(Clone, Debug)]
pub struct Recorder {
    types: Vec<TypeRec>,
    unknown: TypeRec,
    warmup_end: Nanos,
    dropped: u64,
    ignored_warmup: u64,
}

impl Recorder {
    /// Creates a recorder for `num_types` types; completions of requests
    /// that arrived before `warmup_end` are ignored.
    pub fn new(num_types: usize, warmup_end: Nanos) -> Self {
        Recorder {
            types: vec![TypeRec::default(); num_types],
            unknown: TypeRec::default(),
            warmup_end,
            dropped: 0,
            ignored_warmup: 0,
        }
    }

    /// Records a completed request.
    pub fn complete(&mut self, ty: TypeId, arrival: Nanos, sojourn: Nanos, service: Nanos) {
        if arrival < self.warmup_end {
            self.ignored_warmup += 1;
            return;
        }
        let rec = if ty.is_unknown() || ty.index() >= self.types.len() {
            &mut self.unknown
        } else {
            &mut self.types[ty.index()]
        };
        let soj = sojourn.as_nanos();
        let svc = service.as_nanos().max(1);
        rec.sojourn_ns.record(soj);
        let millis = (soj as u128 * SLOWDOWN_SCALE as u128 / svc as u128).min(u64::MAX as u128);
        rec.slowdown_millis.record((millis as u64).max(1));
    }

    /// Records a dropped (flow-controlled) request.
    pub fn drop_request(&mut self) {
        self.dropped += 1;
    }

    /// Number of recorded completions (excluding warm-up and drops).
    pub fn count(&self) -> usize {
        self.types
            .iter()
            .map(|t| t.sojourn_ns.count() as usize)
            .sum::<usize>()
            + self.unknown.sojourn_ns.count() as usize
    }

    /// Requests dropped by flow control.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Completions discarded because they arrived during warm-up.
    pub fn ignored_warmup(&self) -> u64 {
        self.ignored_warmup
    }

    /// Summarizes the run. `extra_latency` (e.g. the 10 µs network RTT) is
    /// added to reported *latencies*; slowdowns stay server-side, per the
    /// paper's definition.
    ///
    /// Adding the RTT *after* the quantile query (a percentile commutes
    /// with a constant shift) keeps the offset exact rather than smearing
    /// it through bucket boundaries.
    pub fn summarize(&self, extra_latency: Nanos) -> RunSummary {
        let mut per_type = Vec::with_capacity(self.types.len());
        let mut all_slowdowns = LogHist::new(DEFAULT_PRECISION_BITS);
        for rec in self.types.iter().chain(core::iter::once(&self.unknown)) {
            all_slowdowns.merge(&rec.slowdown_millis);
            per_type.push(TypeSummary {
                latency_ns: Percentiles::of_hist_shifted(&rec.sojourn_ns, extra_latency.as_nanos()),
                slowdown: Percentiles::of_hist_scaled(&rec.slowdown_millis, SLOWDOWN_SCALE),
            });
        }
        let unknown = per_type.pop().expect("unknown summary present");
        let overall_slowdown = Percentiles::of_hist_scaled(&all_slowdowns, SLOWDOWN_SCALE);
        RunSummary {
            per_type,
            unknown,
            overall_slowdown,
            completions: self.count() as u64,
            dropped: self.dropped,
        }
    }
}

/// Standard percentile set reported by the paper's figures.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile — the paper's headline metric.
    pub p999: f64,
    /// Maximum observed.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample count.
    pub count: usize,
}

impl Percentiles {
    /// Exact percentiles of integer samples (sorted in place).
    pub fn of_u64(samples: &mut [u64]) -> Percentiles {
        if samples.is_empty() {
            return Percentiles::default();
        }
        samples.sort_unstable();
        let q = |p: f64| samples[Self::rank(samples.len(), p)] as f64;
        Percentiles {
            p50: q(0.50),
            p99: q(0.99),
            p999: q(0.999),
            max: samples[samples.len() - 1] as f64,
            mean: samples.iter().map(|&v| v as f64).sum::<f64>() / samples.len() as f64,
            count: samples.len(),
        }
    }

    /// Exact percentiles of float samples (sorted in place).
    pub fn of_f64(samples: &mut [f64]) -> Percentiles {
        if samples.is_empty() {
            return Percentiles::default();
        }
        samples.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let q = |p: f64| samples[Self::rank(samples.len(), p)];
        Percentiles {
            p50: q(0.50),
            p99: q(0.99),
            p999: q(0.999),
            max: samples[samples.len() - 1],
            mean: samples.iter().sum::<f64>() / samples.len() as f64,
            count: samples.len(),
        }
    }

    /// Nearest-rank index for percentile `p` over `n` samples.
    fn rank(n: usize, p: f64) -> usize {
        (((n as f64) * p).ceil() as usize).clamp(1, n) - 1
    }

    /// Percentiles of a histogram with `offset` added to every reported
    /// value (exact shift; bucket error applies only to the quantiles).
    fn of_hist_shifted(h: &LogHist, offset: u64) -> Percentiles {
        if h.count() == 0 {
            return Percentiles::default();
        }
        let q = |p: f64| (h.quantile(p) + offset) as f64;
        Percentiles {
            p50: q(0.50),
            p99: q(0.99),
            p999: q(0.999),
            max: (h.max() + offset) as f64,
            mean: h.mean() + offset as f64,
            count: h.count() as usize,
        }
    }

    /// Percentiles of a fixed-point histogram, divided back by `scale`.
    fn of_hist_scaled(h: &LogHist, scale: f64) -> Percentiles {
        if h.count() == 0 {
            return Percentiles::default();
        }
        let q = |p: f64| h.quantile(p) as f64 / scale;
        Percentiles {
            p50: q(0.50),
            p99: q(0.99),
            p999: q(0.999),
            max: h.max() as f64 / scale,
            mean: h.mean() / scale,
            count: h.count() as usize,
        }
    }
}

/// Summary of one request type's completions.
#[derive(Clone, Debug, Default)]
pub struct TypeSummary {
    /// Latency percentiles, nanoseconds (includes `extra_latency`).
    pub latency_ns: Percentiles,
    /// Slowdown percentiles (server-side, dimensionless).
    pub slowdown: Percentiles,
}

/// Full summary of a simulation run.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Per-type summaries, indexed by type.
    pub per_type: Vec<TypeSummary>,
    /// Summary of UNKNOWN-typed completions.
    pub unknown: TypeSummary,
    /// Slowdown distribution across *all* completions.
    pub overall_slowdown: Percentiles,
    /// Completions recorded (post warm-up).
    pub completions: u64,
    /// Requests dropped by flow control.
    pub dropped: u64,
}

/// Time-bucketed per-type percentile series (paper Figure 7's top row).
#[derive(Clone, Debug)]
pub struct Timeline {
    bucket: Nanos,
    num_types: usize,
    /// `buckets[b][ty]` = latency samples (ns).
    buckets: Vec<Vec<Vec<u64>>>,
}

impl Timeline {
    /// Creates a timeline with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    pub fn new(bucket: Nanos, num_types: usize) -> Self {
        assert!(bucket > Nanos::ZERO);
        Timeline {
            bucket,
            num_types,
            buckets: Vec::new(),
        }
    }

    /// Records a completion at `sent` time (the paper plots against the
    /// *sending* time).
    pub fn record(&mut self, ty: TypeId, sent: Nanos, latency: Nanos) {
        if ty.is_unknown() || ty.index() >= self.num_types {
            return;
        }
        let b = (sent.as_nanos() / self.bucket.as_nanos()) as usize;
        while self.buckets.len() <= b {
            self.buckets.push(vec![Vec::new(); self.num_types]);
        }
        self.buckets[b][ty.index()].push(latency.as_nanos());
    }

    /// Emits `(bucket_start, per-type Percentiles)` rows.
    pub fn series(&self) -> Vec<(Nanos, Vec<Percentiles>)> {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, per_ty)| {
                let start = self.bucket * i as u64;
                let ps = per_ty
                    .iter()
                    .map(|samples| {
                        let mut copy = samples.clone();
                        Percentiles::of_u64(&mut copy)
                    })
                    .collect();
                (start, ps)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(us: u64) -> Nanos {
        Nanos::from_micros(us)
    }

    #[test]
    fn percentile_ranks_are_exact() {
        let mut v: Vec<u64> = (1..=1000).collect();
        let p = Percentiles::of_u64(&mut v);
        assert_eq!(p.p50, 500.0);
        assert_eq!(p.p99, 990.0);
        assert_eq!(p.p999, 999.0);
        assert_eq!(p.max, 1000.0);
        assert_eq!(p.count, 1000);
        assert!((p.mean - 500.5).abs() < 1e-9);
    }

    #[test]
    fn percentiles_of_single_sample() {
        let mut v = vec![42u64];
        let p = Percentiles::of_u64(&mut v);
        assert_eq!(p.p50, 42.0);
        assert_eq!(p.p999, 42.0);
    }

    #[test]
    fn empty_percentiles_are_zero() {
        let p = Percentiles::of_u64(&mut []);
        assert_eq!(p.count, 0);
        assert_eq!(p.p999, 0.0);
    }

    #[test]
    fn recorder_separates_types_and_warmup() {
        let mut r = Recorder::new(2, n(100));
        // Arrived during warm-up: ignored.
        r.complete(TypeId::new(0), n(50), n(10), n(1));
        // Counted.
        r.complete(TypeId::new(0), n(150), n(2), n(1));
        r.complete(TypeId::new(1), n(150), n(200), n(100));
        assert_eq!(r.count(), 2);
        assert_eq!(r.ignored_warmup(), 1);
        let s = r.summarize(Nanos::ZERO);
        assert_eq!(s.per_type[0].latency_ns.p50, 2_000.0);
        assert_eq!(s.per_type[0].slowdown.p50, 2.0);
        assert_eq!(s.per_type[1].slowdown.p50, 2.0);
        assert_eq!(s.overall_slowdown.count, 2);
    }

    #[test]
    fn extra_latency_shifts_latency_not_slowdown() {
        let mut r = Recorder::new(1, Nanos::ZERO);
        r.complete(TypeId::new(0), n(1), n(5), n(1));
        let without = r.summarize(Nanos::ZERO);
        let with = r.summarize(n(10));
        // The RTT shift is exact (applied after the quantile query) even
        // though the quantile itself is bucket-approximate.
        assert_eq!(
            with.per_type[0].latency_ns.p50,
            without.per_type[0].latency_ns.p50 + 10_000.0
        );
        let rel = (with.per_type[0].latency_ns.p50 - 15_000.0).abs() / 15_000.0;
        assert!(rel < 0.01, "p50 = {}", with.per_type[0].latency_ns.p50);
        // Slowdowns ignore the RTT entirely.
        assert_eq!(
            with.per_type[0].slowdown.p50,
            without.per_type[0].slowdown.p50
        );
        let rel = (with.per_type[0].slowdown.p50 - 5.0).abs() / 5.0;
        assert!(rel < 0.01, "slowdown = {}", with.per_type[0].slowdown.p50);
    }

    #[test]
    fn unknown_routes_to_unknown_summary() {
        let mut r = Recorder::new(1, Nanos::ZERO);
        r.complete(TypeId::UNKNOWN, n(1), n(4), n(2));
        r.complete(TypeId::new(9), n(1), n(4), n(2));
        let s = r.summarize(Nanos::ZERO);
        assert_eq!(s.unknown.slowdown.count, 2);
        assert_eq!(s.per_type[0].slowdown.count, 0);
        // Unknown still contributes to the overall slowdown.
        assert_eq!(s.overall_slowdown.count, 2);
    }

    #[test]
    fn zero_service_never_divides_by_zero() {
        let mut r = Recorder::new(1, Nanos::ZERO);
        r.complete(TypeId::new(0), n(1), n(4), Nanos::ZERO);
        let s = r.summarize(Nanos::ZERO);
        assert!(s.per_type[0].slowdown.p50.is_finite());
    }

    #[test]
    fn drops_are_counted() {
        let mut r = Recorder::new(1, Nanos::ZERO);
        r.drop_request();
        r.drop_request();
        assert_eq!(r.summarize(Nanos::ZERO).dropped, 2);
    }

    #[test]
    fn timeline_buckets_by_send_time() {
        let mut t = Timeline::new(n(100), 2);
        t.record(TypeId::new(0), n(10), n(5));
        t.record(TypeId::new(0), n(110), n(7));
        t.record(TypeId::new(1), n(110), n(9));
        t.record(TypeId::UNKNOWN, n(110), n(9)); // Ignored.
        let s = t.series();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].0, Nanos::ZERO);
        assert_eq!(s[0].1[0].count, 1);
        assert_eq!(s[1].1[0].p50, 7_000.0);
        assert_eq!(s[1].1[1].p50, 9_000.0);
    }
}
