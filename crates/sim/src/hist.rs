//! Log-bucketed latency histogram — now shared via `persephone-telemetry`.
//!
//! The implementation moved to [`persephone_telemetry::hist`] so the
//! simulator, runtime, and bench layers all report from the same
//! HDR-style sketch. This module keeps the historical
//! `persephone_sim::hist::LogHist` path alive as a re-export.

pub use persephone_telemetry::hist::{AtomicHist, HistSnapshot, LogHist, DEFAULT_PRECISION_BITS};
