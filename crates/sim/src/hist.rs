//! A log-bucketed latency histogram (HDR-style percentile sketch).
//!
//! The exact [`crate::metrics::Recorder`] stores every sample, which is
//! fine for figure-length runs but unbounded for soak tests. `LogHist`
//! stores counts in logarithmically spaced buckets with a configurable
//! relative precision, giving O(1) memory and percentile queries with a
//! bounded relative error.
//!
//! Layout: values are bucketed by `(exponent, mantissa-slot)` where each
//! power of two is split into `2^precision_bits` linear slots — the same
//! scheme HdrHistogram uses.

/// A histogram over `u64` values (nanoseconds, typically).
#[derive(Clone, Debug)]
pub struct LogHist {
    /// `buckets[exp][slot]` counts.
    counts: Vec<u64>,
    precision_bits: u32,
    total: u64,
    max: u64,
    sum: u128,
}

impl LogHist {
    /// Creates a histogram with `precision_bits` of sub-bucket precision:
    /// the relative quantile error is at most `2^-precision_bits`
    /// (e.g. 5 bits ⇒ ≈3 %).
    ///
    /// # Panics
    ///
    /// Panics if `precision_bits` is not in `1..=10`.
    pub fn new(precision_bits: u32) -> Self {
        assert!((1..=10).contains(&precision_bits));
        let slots = 1usize << precision_bits;
        LogHist {
            counts: vec![0; 64 * slots],
            precision_bits,
            total: 0,
            max: 0,
            sum: 0,
        }
    }

    fn index(&self, value: u64) -> usize {
        let slots = 1u64 << self.precision_bits;
        if value < slots {
            // Small values are exact.
            return value as usize;
        }
        let exp = 63 - value.leading_zeros() as u64;
        let slot = (value >> (exp - self.precision_bits as u64)) - slots;
        (exp as usize - self.precision_bits as usize) * slots as usize
            + slots as usize
            + slot as usize
    }

    /// Lower bound of the bucket at `index` (its representative value).
    fn bucket_low(&self, index: usize) -> u64 {
        let slots = 1usize << self.precision_bits;
        if index < slots {
            return index as u64;
        }
        let group = (index - slots) / slots;
        let slot = (index - slots) % slots;
        let exp = group as u32 + self.precision_bits;
        (1u64 << exp) + ((slot as u64) << (exp - self.precision_bits))
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let i = self.index(value).min(self.counts.len() - 1);
        self.counts[i] += 1;
        self.total += 1;
        self.max = self.max.max(value);
        self.sum += value as u128;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded value (exact).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (exact).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Approximate `p`-quantile (0–1), within the configured relative
    /// error; 0 when empty.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((self.total as f64 * p).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bucket_low(i).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram with the same precision into this one.
    ///
    /// # Panics
    ///
    /// Panics on precision mismatch.
    pub fn merge(&mut self, other: &LogHist) {
        assert_eq!(self.precision_bits, other.precision_bits);
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHist::new(5);
        for v in 0..32 {
            h.record(v);
        }
        // Nearest-rank p50 of 0..=31 is the 16th sample: value 15.
        assert_eq!(h.quantile(0.5), 15);
        assert_eq!(h.count(), 32);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn quantiles_track_exact_within_relative_error() {
        let mut h = LogHist::new(5);
        let mut rng = Rng::new(7);
        let mut exact: Vec<u64> = Vec::new();
        for _ in 0..200_000 {
            // A heavy-tailed mix, like the workloads.
            let v = if rng.next_below(100) == 0 {
                500_000 + rng.next_below(100_000)
            } else {
                500 + rng.next_below(1_000)
            };
            h.record(v);
            exact.push(v);
        }
        exact.sort_unstable();
        for p in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((exact.len() as f64 * p).ceil() as usize).clamp(1, exact.len()) - 1;
            let truth = exact[rank] as f64;
            let approx = h.quantile(p) as f64;
            let rel = (approx - truth).abs() / truth;
            assert!(rel < 0.04, "p{p}: approx {approx} vs exact {truth} ({rel})");
        }
    }

    #[test]
    fn mean_and_max_are_exact() {
        let mut h = LogHist::new(4);
        for v in [1u64, 10, 100, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.max(), 1_000_000);
        assert!((h.mean() - 250_027.75).abs() < 1e-6);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LogHist::new(5);
        assert_eq!(h.quantile(0.999), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn merge_combines_distributions() {
        let mut a = LogHist::new(5);
        let mut b = LogHist::new(5);
        for v in 0..1000 {
            a.record(v);
            b.record(v + 10_000);
        }
        a.merge(&b);
        assert_eq!(a.count(), 2000);
        assert!(a.quantile(0.25) < 1_000);
        assert!(a.quantile(0.75) >= 10_000);
        assert_eq!(a.max(), 10_999);
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn merge_rejects_precision_mismatch() {
        let mut a = LogHist::new(5);
        let b = LogHist::new(6);
        a.merge(&b);
    }

    #[test]
    fn huge_values_saturate_without_panicking() {
        let mut h = LogHist::new(5);
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.quantile(0.5) > 1u64 << 62);
    }
}
