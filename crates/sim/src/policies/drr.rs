//! Deficit Round Robin (DRR) over typed queues — Table 5's
//! "(Deficit) (Weighted) Round Robin".
//!
//! Each type's queue accumulates a *deficit* of service nanoseconds every
//! round; a queue may dispatch its head only when the head's service
//! demand fits within the accumulated deficit, which is then charged.
//! DRR gives long-run fairness in *service time* (not request count)
//! across types, but — as Table 5 notes — provides no latency protection
//! for short requests: a short type must wait for the rotation to come
//! around.

use std::collections::VecDeque;

use persephone_core::time::Nanos;

use crate::engine::{Core, Event, ReqId, SimPolicy};

/// The DRR policy.
pub struct Drr {
    queues: Vec<VecDeque<ReqId>>,
    deficit: Vec<u64>,
    /// Service-nanoseconds granted to each queue per visit.
    quantum_ns: u64,
    /// Next queue the rotor will visit.
    cursor: usize,
    /// Whether the cursor's queue is at the *start* of its visit (gets
    /// its quantum exactly once per visit).
    fresh_visit: bool,
    capacity: usize,
}

impl Drr {
    /// Creates a DRR policy over `num_types` queues with the given
    /// per-round quantum.
    ///
    /// # Panics
    ///
    /// Panics if `num_types == 0` or the quantum is zero.
    pub fn new(num_types: usize, quantum: Nanos) -> Self {
        assert!(num_types > 0 && quantum > Nanos::ZERO);
        Drr {
            queues: vec![VecDeque::new(); num_types],
            deficit: vec![0; num_types],
            quantum_ns: quantum.as_nanos(),
            cursor: 0,
            fresh_visit: true,
            capacity: 0,
        }
    }

    /// Bounds each typed queue (`0` = unbounded).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    fn advance(&mut self) {
        self.cursor = (self.cursor + 1) % self.queues.len();
        self.fresh_visit = true;
    }

    /// Picks the next dispatchable request. The rotor serves the current
    /// queue while its deficit affords the head, then moves on; each
    /// queue's deficit is topped up exactly once per visit (classic DRR).
    /// The rotor loop always terminates with a dispatch when any queue is
    /// non-empty: every visit of a non-empty queue adds one quantum, so
    /// its head becomes affordable after finitely many rounds.
    fn pop_next(&mut self, core: &Core) -> Option<ReqId> {
        if self.queues.iter().all(|q| q.is_empty()) {
            return None;
        }
        loop {
            let ty = self.cursor;
            if self.fresh_visit && !self.queues[ty].is_empty() {
                self.deficit[ty] = self.deficit[ty].saturating_add(self.quantum_ns);
                self.fresh_visit = false;
            }
            match self.queues[ty].front() {
                Some(&head) => {
                    let need = core.req(head).service.as_nanos();
                    if self.deficit[ty] >= need {
                        self.deficit[ty] -= need;
                        return self.queues[ty].pop_front();
                    }
                    // Out of budget: this queue's turn ends.
                    self.advance();
                }
                None => {
                    // An empty queue's deficit resets (standard DRR).
                    self.deficit[ty] = 0;
                    self.advance();
                }
            }
        }
    }
}

impl SimPolicy for Drr {
    fn name(&self) -> String {
        "DRR".into()
    }

    fn handle(&mut self, ev: Event, core: &mut Core) {
        match ev {
            Event::Arrival(id) => {
                let ty = core.req(id).ty.index().min(self.queues.len() - 1);
                if self.capacity != 0 && self.queues[ty].len() >= self.capacity {
                    core.drop_req(id);
                    return;
                }
                self.queues[ty].push_back(id);
                while let Some(w) = core.idle_worker() {
                    match self.pop_next(core) {
                        Some(next) => core.run(w, next),
                        None => break,
                    }
                }
            }
            Event::Completed { worker, .. } => {
                if let Some(next) = self.pop_next(core) {
                    core.run(worker, next);
                }
            }
            Event::SliceExpired { .. } | Event::Timer(_) => {
                unreachable!("DRR never slices or sets timers")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use crate::workload::{ArrivalGen, Workload};

    #[test]
    fn drr_serves_both_types() {
        let wl = Workload::high_bimodal();
        let dur = Nanos::from_millis(200);
        let gen = ArrivalGen::uniform(&wl, 8, 0.7, dur, 9);
        let mut p = Drr::new(2, Nanos::from_micros(100));
        let out = simulate(&mut p, gen, 2, dur, &SimConfig::new(8));
        assert!(out.summary.per_type[0].latency_ns.count > 100);
        assert!(out.summary.per_type[1].latency_ns.count > 100);
    }

    #[test]
    fn no_starvation_under_overload() {
        // At 2x overload with bounded queues, DRR is work conserving: the
        // short type's (tiny) offered service share completes essentially
        // in full, and the long type saturates the remaining capacity.
        let wl = Workload::high_bimodal();
        let dur = Nanos::from_millis(100);
        let gen = ArrivalGen::uniform(&wl, 4, 2.0, dur, 4);
        let mut p = Drr::new(2, Nanos::from_micros(100)).with_capacity(64);
        let out = simulate(&mut p, gen, 2, dur, &SimConfig::new(4));
        assert!(out.summary.dropped > 0, "2x overload must shed longs");
        let shorts = out.summary.per_type[0].latency_ns.count as f64;
        let longs = out.summary.per_type[1].latency_ns.count as f64;
        // Offered shorts ≈ 2 × 79.2k/s × 0.5 × 0.1 s × 0.9 (warm-up cut)
        // ≈ 7100; nearly all of them fit in 1 % of the service capacity.
        assert!(shorts > 5_000.0, "shorts completed = {shorts}");
        // Longs are capacity-bound: ≤ 4 workers × runtime / 100 µs.
        let budget = out.end_time.as_secs_f64() * 4.0 / 100e-6;
        assert!(
            longs <= budget * 1.05,
            "longs {longs} exceed capacity {budget}"
        );
        assert!(
            longs > budget * 0.5,
            "longs {longs} far below capacity {budget}"
        );
    }

    #[test]
    fn stale_deficit_is_consumed_or_reset() {
        let wl = Workload::high_bimodal();
        let mut p = Drr::new(2, Nanos::from_micros(50));
        p.deficit[1] = 1_000_000;
        // After a run in which type 1's queue repeatedly empties, the
        // seeded stale deficit must have been spent or reset, never kept.
        let dur = Nanos::from_millis(10);
        let gen = ArrivalGen::uniform(&wl, 2, 0.1, dur, 2);
        let _ = simulate(&mut p, gen, 2, dur, &SimConfig::new(2));
        assert!(
            p.deficit[1] < 1_000_000,
            "stale deficit survived: {}",
            p.deficit[1]
        );
    }
}
