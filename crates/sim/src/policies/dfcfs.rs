//! Decentralized first-come-first-served (d-FCFS).
//!
//! Models Receive-Side Scaling: every worker owns a local queue and
//! receives a uniformly random share of incoming traffic (IX, Arrakis;
//! Shenango with work stealing disabled). Workers never help each other,
//! so d-FCFS exhibits an *uncontrolled* form of non work conservation:
//! cores idle while requests wait in other cores' queues.
//!
//! Thin adapter over the shared [`DfcfsEngine`]: the simulator runs the
//! exact steering and per-worker-queue code the threaded runtime runs
//! under `ServerBuilder::policy(Policy::DFcfs)`.

use persephone_core::dispatch::{DfcfsEngine, EngineConfig, ScheduleEngine};

use super::EngineAdapter;
use crate::engine::{Core, Event, ReqId, SimPolicy};

/// The d-FCFS policy.
pub struct DFcfs {
    inner: EngineAdapter<DfcfsEngine<ReqId>>,
    workers: usize,
    seed: u64,
}

impl DFcfs {
    /// Creates a d-FCFS policy over `workers` local queues; `seed` drives
    /// the RSS-like uniform steering. d-FCFS is type-blind, so no workload
    /// description is needed.
    pub fn new(workers: usize, seed: u64) -> Self {
        DFcfs::build(workers, seed, 0)
    }

    /// Bounds each local queue (`0` = unbounded). Call right after the
    /// constructor, before the first event.
    pub fn with_capacity(self, capacity: usize) -> Self {
        DFcfs::build(self.workers, self.seed, capacity)
    }

    fn build(workers: usize, seed: u64, capacity: usize) -> Self {
        let mut cfg = EngineConfig::darc(workers);
        cfg.queue_capacity = capacity;
        DFcfs {
            inner: EngineAdapter::new(DfcfsEngine::new(cfg, 0, &[]).with_seed(seed)),
            workers,
            seed,
        }
    }

    /// Queued requests across all local queues (test hook).
    pub fn backlog(&self) -> usize {
        self.inner.engine().total_pending()
    }
}

impl SimPolicy for DFcfs {
    fn name(&self) -> String {
        "d-FCFS".into()
    }

    fn handle(&mut self, ev: Event, core: &mut Core) {
        self.inner.handle(ev, core);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use crate::workload::{ArrivalGen, Workload};
    use persephone_core::time::Nanos;

    #[test]
    fn drains_and_completes_everything() {
        let wl = Workload::high_bimodal();
        let dur = Nanos::from_millis(100);
        let gen = ArrivalGen::uniform(&wl, 4, 0.6, dur, 9);
        let mut p = DFcfs::new(4, 1);
        let out = simulate(&mut p, gen, 2, dur, &SimConfig::new(4));
        assert!(out.completions > 1000);
        assert_eq!(p.backlog(), 0);
    }

    #[test]
    fn worse_tail_than_available_capacity_suggests() {
        // At 50 % load a centralized queue would rarely queue; d-FCFS's
        // random steering still produces local hotspots, so the p99.9
        // slowdown must be clearly above 1.
        let wl = Workload::high_bimodal();
        let dur = Nanos::from_millis(200);
        let gen = ArrivalGen::uniform(&wl, 8, 0.5, dur, 5);
        let mut p = DFcfs::new(8, 2);
        let out = simulate(&mut p, gen, 2, dur, &SimConfig::new(8));
        assert!(
            out.summary.overall_slowdown.p999 > 2.0,
            "p999 = {}",
            out.summary.overall_slowdown.p999
        );
    }
}
