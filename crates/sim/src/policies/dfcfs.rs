//! Decentralized first-come-first-served (d-FCFS).
//!
//! Models Receive-Side Scaling: every worker owns a local queue and
//! receives a uniformly random share of incoming traffic (IX, Arrakis;
//! Shenango with work stealing disabled). Workers never help each other,
//! so d-FCFS exhibits an *uncontrolled* form of non work conservation:
//! cores idle while requests wait in other cores' queues.

use std::collections::VecDeque;

use crate::engine::{Core, Event, ReqId, SimPolicy};
use crate::rng::Rng;

/// The d-FCFS policy.
pub struct DFcfs {
    queues: Vec<VecDeque<ReqId>>,
    rng: Rng,
    capacity: usize,
}

impl DFcfs {
    /// Creates a d-FCFS policy over `workers` local queues; `seed` drives
    /// the RSS-like uniform steering.
    pub fn new(workers: usize, seed: u64) -> Self {
        DFcfs {
            queues: vec![VecDeque::new(); workers],
            rng: Rng::new(seed),
            capacity: 0,
        }
    }

    /// Bounds each local queue (`0` = unbounded).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Queued requests across all local queues (test hook).
    pub fn backlog(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }
}

impl SimPolicy for DFcfs {
    fn name(&self) -> String {
        "d-FCFS".into()
    }

    fn handle(&mut self, ev: Event, core: &mut Core) {
        match ev {
            Event::Arrival(id) => {
                // RSS: the NIC hashes the flow onto a queue; an open-loop
                // client population makes that effectively uniform.
                let w = self.rng.next_below(core.num_workers() as u64) as usize;
                if core.worker_idle(w) {
                    core.run(w, id);
                } else if self.capacity != 0 && self.queues[w].len() >= self.capacity {
                    core.drop_req(id);
                } else {
                    self.queues[w].push_back(id);
                }
            }
            Event::Completed { worker, .. } => {
                if let Some(next) = self.queues[worker].pop_front() {
                    core.run(worker, next);
                }
            }
            Event::SliceExpired { .. } | Event::Timer(_) => {
                unreachable!("d-FCFS never slices or sets timers")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use crate::workload::{ArrivalGen, Workload};
    use persephone_core::time::Nanos;

    #[test]
    fn drains_and_completes_everything() {
        let wl = Workload::high_bimodal();
        let dur = Nanos::from_millis(100);
        let gen = ArrivalGen::uniform(&wl, 4, 0.6, dur, 9);
        let mut p = DFcfs::new(4, 1);
        let out = simulate(&mut p, gen, 2, dur, &SimConfig::new(4));
        assert!(out.completions > 1000);
        assert_eq!(p.backlog(), 0);
    }

    #[test]
    fn worse_tail_than_available_capacity_suggests() {
        // At 50 % load a centralized queue would rarely queue; d-FCFS's
        // random steering still produces local hotspots, so the p99.9
        // slowdown must be clearly above 1.
        let wl = Workload::high_bimodal();
        let dur = Nanos::from_millis(200);
        let gen = ArrivalGen::uniform(&wl, 8, 0.5, dur, 5);
        let mut p = DFcfs::new(8, 2);
        let out = simulate(&mut p, gen, 2, dur, &SimConfig::new(8));
        assert!(
            out.summary.overall_slowdown.p999 > 2.0,
            "p999 = {}",
            out.summary.overall_slowdown.p999
        );
    }
}
