//! Quantum-based time sharing — the Shinjuku model (paper §2, §5.1, §6).
//!
//! Requests run for at most one quantum; when the quantum expires *and
//! other work is waiting*, the running request is preempted: its worker
//! pays the preemption overhead (the context switch) and the victim
//! re-enters the queue. When nothing is waiting, the request simply
//! continues — Shinjuku's interrupts are cheap no-ops for a worker with
//! an empty queue, and the paper's own simulation triggers preemption
//! "as soon as a short request is blocked in the queue" (§6). Two queue
//! disciplines, matching Shinjuku's policies:
//!
//! * **single queue** — preempted requests re-enter at the queue *tail*
//!   (used by the paper for Extreme Bimodal);
//! * **multi queue** — one queue per type, preempted requests re-enter at
//!   the *head* of their typed queue, and queues are selected by a
//!   Borrowed-Virtual-Time-like rule (least service consumed first).
//!
//! Figure 10's propagation delay is modeled faithfully: after the
//! preemption decision the victim keeps running (making progress) for
//! `propagation`, then burns `overhead` of pure loss.

use std::collections::VecDeque;

use persephone_core::policy::{TimeSharingParams, TsDiscipline};
use persephone_core::time::Nanos;

use crate::engine::{Core, Event, ReqId, SimPolicy};

/// The time-sharing policy.
pub struct TimeSharing {
    params: TimeSharingParams,
    single: VecDeque<ReqId>,
    typed: Vec<VecDeque<ReqId>>,
    /// Virtual time per type: nanoseconds of service consumed (BVT-like).
    vt: Vec<u64>,
    capacity: usize,
}

impl TimeSharing {
    /// Creates a time-sharing policy with the given parameters over
    /// `num_types` request types.
    pub fn new(params: TimeSharingParams, num_types: usize) -> Self {
        TimeSharing {
            params,
            single: VecDeque::new(),
            typed: vec![VecDeque::new(); num_types],
            vt: vec![0; num_types],
            capacity: 0,
        }
    }

    /// Bounds each queue (`0` = unbounded). Only fresh arrivals are
    /// dropped; preempted requests always re-enter their queue.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    fn queue_full(&self, ty: usize) -> bool {
        if self.capacity == 0 {
            return false;
        }
        match self.params.discipline {
            TsDiscipline::SingleQueue => self.single.len() >= self.capacity,
            TsDiscipline::MultiQueue => self.typed[ty].len() >= self.capacity,
        }
    }

    /// Slice budget per dispatch: the quantum plus the propagation window
    /// during which the victim still progresses.
    fn slice(&self) -> Nanos {
        self.params.quantum + self.params.propagation
    }

    fn enqueue_tail(&mut self, id: ReqId, ty: usize) {
        match self.params.discipline {
            TsDiscipline::SingleQueue => self.single.push_back(id),
            TsDiscipline::MultiQueue => {
                if self.typed[ty].is_empty() {
                    // BVT-style lag cap: a queue that slept must not hoard
                    // priority it "saved" while empty.
                    let min_live = self
                        .typed
                        .iter()
                        .enumerate()
                        .filter(|(t, q)| !q.is_empty() && *t != ty)
                        .map(|(t, _)| self.vt[t])
                        .min();
                    if let Some(m) = min_live {
                        self.vt[ty] = self.vt[ty].max(m);
                    }
                }
                self.typed[ty].push_back(id);
            }
        }
    }

    fn enqueue_preempted(&mut self, id: ReqId, ty: usize) {
        match self.params.discipline {
            TsDiscipline::SingleQueue => self.single.push_back(id),
            TsDiscipline::MultiQueue => self.typed[ty].push_front(id),
        }
    }

    fn has_waiting(&self) -> bool {
        match self.params.discipline {
            TsDiscipline::SingleQueue => !self.single.is_empty(),
            TsDiscipline::MultiQueue => self.typed.iter().any(|q| !q.is_empty()),
        }
    }

    fn pop_next(&mut self) -> Option<(ReqId, usize)> {
        match self.params.discipline {
            TsDiscipline::SingleQueue => self.single.pop_front().map(|id| (id, 0)),
            TsDiscipline::MultiQueue => {
                let ty = self
                    .typed
                    .iter()
                    .enumerate()
                    .filter(|(_, q)| !q.is_empty())
                    .min_by_key(|(t, _)| self.vt[*t])
                    .map(|(t, _)| t)?;
                self.typed[ty].pop_front().map(|id| (id, ty))
            }
        }
    }

    /// Starts one slice of `id` on `worker`, charging `pre_cost` of
    /// context-switch time first.
    fn run(&mut self, worker: usize, id: ReqId, pre_cost: Nanos, core: &mut Core) {
        let ty = core.req(id).ty.index();
        let progress = core.req(id).remaining.min(self.slice());
        self.vt[ty] += progress.as_nanos();
        core.run_slice_after(worker, id, pre_cost, self.slice());
    }

    fn dispatch(&mut self, worker: usize, pre_cost: Nanos, core: &mut Core) {
        if let Some((id, _)) = self.pop_next() {
            self.run(worker, id, pre_cost, core);
        }
    }
}

impl SimPolicy for TimeSharing {
    fn name(&self) -> String {
        let total = self.params.overhead + self.params.propagation;
        format!("TS-{:.0}us", total.as_micros_f64())
    }

    fn handle(&mut self, ev: Event, core: &mut Core) {
        match ev {
            Event::Arrival(id) => {
                let ty = core.req(id).ty.index();
                if let Some(w) = core.idle_worker() {
                    self.run(w, id, Nanos::ZERO, core);
                } else if self.queue_full(ty) {
                    core.drop_req(id);
                } else {
                    self.enqueue_tail(id, ty);
                }
            }
            Event::Completed { worker, .. } => {
                // A voluntary switch at completion costs nothing extra.
                self.dispatch(worker, Nanos::ZERO, core);
            }
            Event::SliceExpired { worker, req } => {
                if self.has_waiting() {
                    // A real preemption: requeue the victim, pay the
                    // context-switch cost, run the next request.
                    let ty = core.req(req).ty.index();
                    self.enqueue_preempted(req, ty);
                    self.dispatch(worker, self.params.overhead, core);
                } else {
                    // Nobody is waiting: the interrupt is a no-op and the
                    // request keeps its core for another quantum.
                    self.run(worker, req, Nanos::ZERO, core);
                }
            }
            Event::Timer(_) => unreachable!("TS uses slices, not timers"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig, SimOutput};
    use crate::workload::{ArrivalGen, Workload};

    fn run_ts(params: TimeSharingParams, load: f64, seed: u64) -> SimOutput {
        let wl = Workload::extreme_bimodal();
        let dur = Nanos::from_millis(100);
        let gen = ArrivalGen::uniform(&wl, 8, load, dur, seed);
        let mut p = TimeSharing::new(params, 2);
        simulate(&mut p, gen, 2, dur, &SimConfig::new(8))
    }

    #[test]
    fn protects_short_requests_against_longs() {
        let ts = run_ts(TimeSharingParams::ideal(), 0.7, 3);
        let cf = {
            let wl = Workload::extreme_bimodal();
            let dur = Nanos::from_millis(100);
            let gen = ArrivalGen::uniform(&wl, 8, 0.7, dur, 3);
            let mut p = super::super::cfcfs::CFcfs::new(8);
            simulate(&mut p, gen, 2, dur, &SimConfig::new(8))
        };
        assert!(
            ts.summary.per_type[0].slowdown.p999 < cf.summary.per_type[0].slowdown.p999,
            "TS {} vs c-FCFS {}",
            ts.summary.per_type[0].slowdown.p999,
            cf.summary.per_type[0].slowdown.p999
        );
    }

    #[test]
    fn overhead_costs_capacity() {
        let ideal = run_ts(TimeSharingParams::ideal(), 0.9, 5);
        let costly = run_ts(TimeSharingParams::shinjuku_fig1(), 0.9, 5);
        // At 90 % load preemptions are frequent (longs keep getting
        // displaced by waiting shorts); 1 µs per switch burns real CPU
        // and the tail must be clearly worse than the free-switch ideal.
        assert!(
            costly.summary.overall_slowdown.p999 > ideal.summary.overall_slowdown.p999 * 1.5,
            "costly {} vs ideal {}",
            costly.summary.overall_slowdown.p999,
            ideal.summary.overall_slowdown.p999
        );
        assert!(costly.mean_overhead_cores() > 0.05);
        assert_eq!(ideal.mean_overhead_cores(), 0.0);
    }

    #[test]
    fn no_preemption_cost_when_nothing_waits() {
        // At very low load the quantum expiries are no-ops: zero overhead
        // is charged even with expensive preemption parameters.
        let out = run_ts(TimeSharingParams::shinjuku_fig1(), 0.05, 7);
        assert_eq!(
            out.mean_overhead_cores(),
            0.0,
            "idle-queue interrupts must be free"
        );
        // Long requests also finish at their raw service time.
        let long_p50 = out.summary.per_type[1].latency_ns.p50;
        assert!(
            long_p50 < 520_000.0,
            "uncontended longs must not pay preemption tax: {long_p50}"
        );
    }

    #[test]
    fn long_requests_pay_the_preemption_tax_under_contention() {
        // At high load a 500 µs request is repeatedly displaced by
        // waiting shorts; with a 5 µs quantum and 1 µs switch cost the
        // paper reports ≥ 24 % inflation (620 µs for 500 µs of work,
        // §5.4.2). Check the p50 inflation at 85 % load.
        let out = run_ts(TimeSharingParams::shinjuku_fig1(), 0.85, 7);
        let long_p50 = out.summary.per_type[1].latency_ns.p50;
        assert!(
            long_p50 >= 500_000.0 * 1.15,
            "long p50 = {long_p50} ns, expected clearly above 500 µs"
        );
    }

    #[test]
    fn multi_queue_preempted_requests_resume_first() {
        let params = TimeSharingParams {
            discipline: TsDiscipline::MultiQueue,
            ..TimeSharingParams::shinjuku_fig1()
        };
        let out = run_ts(params, 0.6, 9);
        assert!(out.completions > 1_000);
    }

    #[test]
    fn single_queue_requeues_at_tail() {
        let mut ts = TimeSharing::new(TimeSharingParams::shinjuku_fig1(), 1);
        ts.enqueue_tail(1, 0);
        ts.enqueue_preempted(2, 0);
        assert_eq!(ts.pop_next(), Some((1, 0)), "tail re-entry keeps order");
    }

    #[test]
    fn multi_queue_requeues_at_head() {
        let params = TimeSharingParams {
            discipline: TsDiscipline::MultiQueue,
            ..TimeSharingParams::shinjuku_fig1()
        };
        let mut ts = TimeSharing::new(params, 2);
        ts.enqueue_tail(1, 0);
        ts.enqueue_preempted(2, 0);
        let (first, _) = ts.pop_next().unwrap();
        assert_eq!(first, 2, "preempted request resumes at queue head");
    }
}
