//! Centralized first-come-first-served (c-FCFS).
//!
//! One global queue feeds any idle worker. This is what single-dispatcher
//! servers (NGINX-style) do, and what work-stealing kernel-bypass systems
//! (ZygOS, Shenango) approximate with per-worker queues plus stealing —
//! which is how the paper evaluates Shenango.
//!
//! Thin adapter over the shared [`CfcfsEngine`]: the simulator runs the
//! exact queueing and worker-selection code the threaded runtime runs
//! under `ServerBuilder::policy(Policy::CFcfs)`.

use persephone_core::dispatch::{CfcfsEngine, EngineConfig};

use super::EngineAdapter;
use crate::engine::{Core, Event, ReqId, SimPolicy};

/// The c-FCFS policy.
pub struct CFcfs {
    inner: EngineAdapter<CfcfsEngine<ReqId>>,
    workers: usize,
}

impl CFcfs {
    /// Creates a c-FCFS policy over `workers` cores with an unbounded
    /// queue. c-FCFS is type-blind, so no workload description is needed.
    pub fn new(workers: usize) -> Self {
        CFcfs::build(workers, 0)
    }

    /// Bounds the central queue (`0` = unbounded); arrivals beyond the
    /// bound are dropped, as a real system's finite buffers would. Call
    /// right after the constructor, before the first event.
    pub fn with_capacity(self, capacity: usize) -> Self {
        CFcfs::build(self.workers, capacity)
    }

    fn build(workers: usize, capacity: usize) -> Self {
        let mut cfg = EngineConfig::darc(workers);
        cfg.queue_capacity = capacity;
        CFcfs {
            inner: EngineAdapter::new(CfcfsEngine::new(cfg, 0, &[])),
            workers,
        }
    }

    /// Queued requests (test hook).
    pub fn backlog(&self) -> usize {
        self.inner.engine().backlog()
    }
}

impl SimPolicy for CFcfs {
    fn name(&self) -> String {
        "c-FCFS".into()
    }

    fn handle(&mut self, ev: Event, core: &mut Core) {
        self.inner.handle(ev, core);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use crate::workload::{ArrivalGen, Workload};
    use persephone_core::time::Nanos;

    fn run(load: f64, seed: u64) -> crate::engine::SimOutput {
        let wl = Workload::extreme_bimodal();
        let dur = Nanos::from_millis(100);
        let gen = ArrivalGen::uniform(&wl, 8, load, dur, seed);
        let mut p = CFcfs::new(8);
        simulate(&mut p, gen, 2, dur, &SimConfig::new(8))
    }

    #[test]
    fn beats_dfcfs_at_moderate_load() {
        let wl = Workload::high_bimodal();
        let dur = Nanos::from_millis(200);
        let out_c = {
            let gen = ArrivalGen::uniform(&wl, 8, 0.5, dur, 7);
            let mut p = CFcfs::new(8);
            simulate(&mut p, gen, 2, dur, &SimConfig::new(8))
        };
        let out_d = {
            let gen = ArrivalGen::uniform(&wl, 8, 0.5, dur, 7);
            let mut p = super::super::dfcfs::DFcfs::new(8, 3);
            simulate(&mut p, gen, 2, dur, &SimConfig::new(8))
        };
        assert!(
            out_c.summary.overall_slowdown.p999 < out_d.summary.overall_slowdown.p999,
            "c-FCFS {} vs d-FCFS {}",
            out_c.summary.overall_slowdown.p999,
            out_d.summary.overall_slowdown.p999
        );
    }

    #[test]
    fn short_requests_suffer_dispersion_blocking() {
        // Extreme Bimodal at high load: short requests' p99.9 slowdown is
        // enormous under c-FCFS (the paper's core motivation).
        let out = run(0.9, 11);
        let short = &out.summary.per_type[0];
        assert!(
            short.slowdown.p999 > 50.0,
            "short p999 slowdown = {}",
            short.slowdown.p999
        );
    }

    #[test]
    fn mm_c_sanity_against_erlang_c() {
        // M/M/8 at ρ = 0.7 with exponential 10 µs service: mean wait from
        // Erlang C ≈ P_wait/(c·µ−λ). Check the simulated mean sojourn.
        use crate::dist::Dist;
        use crate::workload::TypeMix;
        let wl = Workload::new(
            "mm8",
            vec![TypeMix::new(
                "X",
                1.0,
                Dist::Exponential(Nanos::from_micros(10)),
            )],
        );
        let dur = Nanos::from_millis(400);
        let gen = ArrivalGen::uniform(&wl, 8, 0.7, dur, 13);
        let mut p = CFcfs::new(8);
        let out = simulate(&mut p, gen, 1, dur, &SimConfig::new(8));
        // Erlang C for c=8, rho=0.7: P_wait ≈ 0.2709; W_q = P_wait /
        // (c·µ·(1−ρ)) = 0.2709 / (8·0.1·0.3) µs ≈ 1.129 µs; sojourn ≈ 11.13 µs.
        let mean_ns = out.summary.per_type[0].latency_ns.mean;
        assert!(
            (mean_ns - 11_130.0).abs() < 450.0,
            "mean sojourn = {mean_ns} ns, expected ≈ 11130"
        );
    }

    #[test]
    fn bounded_queue_sheds_overload() {
        let wl = Workload::high_bimodal();
        let dur = Nanos::from_millis(20);
        let gen = ArrivalGen::uniform(&wl, 2, 3.0, dur, 19);
        let mut p = CFcfs::new(2).with_capacity(4);
        let out = simulate(&mut p, gen, 2, dur, &SimConfig::new(2));
        assert!(out.summary.dropped > 0, "3× offered load must drop");
        assert!(out.completions > 0);
        assert_eq!(p.backlog(), 0, "simulate drains the queue");
    }
}
