//! Scheduling-policy implementations for the simulator.
//!
//! Each submodule implements one policy from the paper's Tables 1 and 5:
//!
//! * [`dfcfs`] — decentralized FCFS (RSS-style per-worker queues).
//! * [`cfcfs`] — centralized FCFS (single queue, any idle worker).
//! * [`fp`] — fixed priority by type, work conserving.
//! * [`sjf`] — non-preemptive shortest-job-first.
//! * [`edf`] — non-preemptive earliest-deadline-first.
//! * [`drr`] — deficit round robin over typed queues.
//! * [`cscq`] — cycle stealing with central queue (Harchol-Balter).
//! * [`ts`] — quantum-based time sharing (Shinjuku model).
//! * [`darc`] — DARC, driving the real `persephone_core` engine.
//!
//! [`build`] maps a [`Policy`] description onto a boxed implementation.

pub mod cfcfs;
pub mod cscq;
pub mod darc;
pub mod dfcfs;
pub mod drr;
pub mod edf;
pub mod fp;
pub mod sjf;
pub mod ts;

use persephone_core::policy::Policy;

use crate::engine::SimPolicy;
use crate::workload::Workload;

/// Instantiates the simulator implementation of `policy` for `workload`
/// on `workers` cores.
///
/// DARC variants receive the workload's type count; the dynamic variant
/// boots unhinted (c-FCFS warm-up then online profiling), exactly like the
/// real system. The profiling window is sized by `darc_min_samples`.
/// `queue_capacity` bounds every scheduling queue (`0` = unbounded):
/// real kernel-bypass systems have finite buffers and shed load at
/// saturation rather than queueing without bound, and DARC's typed-queue
/// flow control (paper §4.3.3) is exactly such a bound.
pub fn build(
    policy: &Policy,
    workload: &Workload,
    workers: usize,
    darc_min_samples: u64,
    queue_capacity: usize,
) -> Box<dyn SimPolicy> {
    match policy {
        Policy::DFcfs => Box::new(dfcfs::DFcfs::new(workers, 0xD15).with_capacity(queue_capacity)),
        Policy::CFcfs => Box::new(cfcfs::CFcfs::new().with_capacity(queue_capacity)),
        Policy::FixedPriority => {
            Box::new(fp::FixedPriority::new(workload).with_capacity(queue_capacity))
        }
        Policy::Sjf => Box::new(sjf::Sjf::new().with_capacity(queue_capacity)),
        Policy::TimeSharing(p) => {
            Box::new(ts::TimeSharing::new(*p, workload.num_types()).with_capacity(queue_capacity))
        }
        Policy::DarcStatic { reserved_short } => Box::new(
            darc::DarcSim::fixed(workload, workers, *reserved_short).with_capacity(queue_capacity),
        ),
        Policy::Darc => Box::new(
            darc::DarcSim::dynamic(workload, workers, darc_min_samples)
                .with_capacity(queue_capacity),
        ),
    }
}
