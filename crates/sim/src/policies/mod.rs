//! Scheduling-policy implementations for the simulator.
//!
//! Each submodule implements one policy from the paper's Tables 1 and 5:
//!
//! * [`dfcfs`] — decentralized FCFS (RSS-style per-worker queues).
//! * [`cfcfs`] — centralized FCFS (single queue, any idle worker).
//! * [`fp`] — fixed priority by type, work conserving.
//! * [`sjf`] — non-preemptive shortest-job-first.
//! * [`edf`] — non-preemptive earliest-deadline-first.
//! * [`drr`] — deficit round robin over typed queues.
//! * [`cscq`] — cycle stealing with central queue (Harchol-Balter).
//! * [`ts`] — quantum-based time sharing (Shinjuku model).
//! * [`darc`] — DARC, driving the real `persephone_core` engine.
//!
//! The Table 5 policies that also run on the live runtime — d-FCFS,
//! c-FCFS, FP, SJF, and both DARC variants — are thin adapters over the
//! shared `persephone_core` [`ScheduleEngine`]s, so the simulator
//! exercises the exact scheduling code a deployment runs. The remaining
//! modules (`edf`, `drr`, `cscq`, and the preemptive `ts`) are
//! simulator-only disciplines with their own logic.
//!
//! [`build`] maps a [`Policy`] description onto a boxed implementation.

pub mod cfcfs;
pub mod cscq;
pub mod darc;
pub mod dfcfs;
pub mod drr;
pub mod edf;
pub mod fp;
pub mod sjf;
pub mod ts;

use persephone_core::dispatch::ScheduleEngine;
use persephone_core::policy::Policy;
use persephone_core::types::WorkerId;

use crate::engine::{Core, Event, ReqId, SimPolicy};
use crate::workload::Workload;

/// Shared glue between a core [`ScheduleEngine`] and the simulator (the
/// pattern [`darc::DarcSim`] established): arrivals are classified with
/// the request's true type and enqueued, every dispatch decision the
/// engine makes is executed on the simulated cores, and completions are
/// fed back so the engine's worker bookkeeping mirrors the simulation.
pub(crate) struct EngineAdapter<E: ScheduleEngine<ReqId>> {
    engine: E,
}

impl<E: ScheduleEngine<ReqId>> EngineAdapter<E> {
    pub(crate) fn new(engine: E) -> Self {
        EngineAdapter { engine }
    }

    /// Read access to the wrapped engine (test hooks, accessors).
    pub(crate) fn engine(&self) -> &E {
        &self.engine
    }

    fn drain(&mut self, core: &mut Core) {
        while let Some(d) = self.engine.poll(core.now) {
            core.run(d.worker.index(), d.req);
        }
    }

    /// Routes a simulation event through the engine. Slice/timer events
    /// are unreachable: every adapted engine is non-preemptive.
    pub(crate) fn handle(&mut self, ev: Event, core: &mut Core) {
        match ev {
            Event::Arrival(id) => {
                let ty = core.req(id).ty;
                if let Err(rejected) = self.engine.enqueue(ty, id, core.now) {
                    core.drop_req(rejected);
                }
                self.drain(core);
            }
            Event::Completed {
                worker, service, ..
            } => {
                self.engine
                    .complete(WorkerId::new(worker as u32), service, core.now);
                self.drain(core);
            }
            Event::SliceExpired { .. } | Event::Timer(_) => {
                unreachable!("core scheduling engines are non-preemptive")
            }
        }
    }
}

/// Instantiates the simulator implementation of `policy` for `workload`
/// on `workers` cores.
///
/// DARC variants receive the workload's type count; the dynamic variant
/// boots unhinted (c-FCFS warm-up then online profiling), exactly like the
/// real system. The profiling window is sized by `darc_min_samples`.
/// `queue_capacity` bounds every scheduling queue (`0` = unbounded):
/// real kernel-bypass systems have finite buffers and shed load at
/// saturation rather than queueing without bound, and DARC's typed-queue
/// flow control (paper §4.3.3) is exactly such a bound.
pub fn build(
    policy: &Policy,
    workload: &Workload,
    workers: usize,
    darc_min_samples: u64,
    queue_capacity: usize,
) -> Box<dyn SimPolicy> {
    match policy {
        Policy::DFcfs => Box::new(dfcfs::DFcfs::new(workers, 0xD15).with_capacity(queue_capacity)),
        Policy::CFcfs => Box::new(cfcfs::CFcfs::new(workers).with_capacity(queue_capacity)),
        Policy::FixedPriority => {
            Box::new(fp::FixedPriority::new(workload, workers).with_capacity(queue_capacity))
        }
        Policy::Sjf => Box::new(sjf::Sjf::new(workload, workers).with_capacity(queue_capacity)),
        Policy::TimeSharing(p) => {
            Box::new(ts::TimeSharing::new(*p, workload.num_types()).with_capacity(queue_capacity))
        }
        Policy::DarcStatic { reserved_short } => Box::new(
            darc::DarcSim::fixed(workload, workers, *reserved_short).with_capacity(queue_capacity),
        ),
        Policy::Darc => Box::new(
            darc::DarcSim::dynamic(workload, workers, darc_min_samples)
                .with_capacity(queue_capacity),
        ),
    }
}
