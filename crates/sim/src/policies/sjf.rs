//! Non-preemptive Shortest-Job-First (SJF).
//!
//! An idealized comparison point from Table 5: the dispatcher magically
//! knows each request's exact service demand and always dequeues the
//! shortest pending one. Running requests are never preempted, so SJF
//! still lets an unlucky short request block behind `W` in-flight longs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use persephone_core::time::Nanos;

use crate::engine::{Core, Event, ReqId, SimPolicy};

/// The SJF policy (oracle service times).
#[derive(Default)]
pub struct Sjf {
    heap: BinaryHeap<Reverse<(Nanos, u64, ReqId)>>,
    seq: u64,
    capacity: usize,
}

impl Sjf {
    /// Creates an SJF policy.
    pub fn new() -> Self {
        Sjf::default()
    }

    /// Bounds the pending heap (`0` = unbounded).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }
}

impl SimPolicy for Sjf {
    fn name(&self) -> String {
        "SJF".into()
    }

    fn handle(&mut self, ev: Event, core: &mut Core) {
        match ev {
            Event::Arrival(id) => {
                if let Some(w) = core.idle_worker() {
                    core.run(w, id);
                } else if self.capacity != 0 && self.heap.len() >= self.capacity {
                    core.drop_req(id);
                } else {
                    let svc = core.req(id).service;
                    self.seq += 1;
                    self.heap.push(Reverse((svc, self.seq, id)));
                }
            }
            Event::Completed { worker, .. } => {
                if let Some(Reverse((_, _, next))) = self.heap.pop() {
                    core.run(worker, next);
                }
            }
            Event::SliceExpired { .. } | Event::Timer(_) => {
                unreachable!("SJF never slices or sets timers")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use crate::workload::{ArrivalGen, Workload};

    #[test]
    fn sjf_orders_by_service_time() {
        let wl = Workload::high_bimodal();
        let dur = Nanos::from_millis(300);
        let sjf = {
            let gen = ArrivalGen::uniform(&wl, 4, 0.9, dur, 21);
            let mut p = Sjf::new();
            simulate(&mut p, gen, 2, dur, &SimConfig::new(4))
        };
        let cf = {
            let gen = ArrivalGen::uniform(&wl, 4, 0.9, dur, 21);
            let mut p = super::super::cfcfs::CFcfs::new();
            simulate(&mut p, gen, 2, dur, &SimConfig::new(4))
        };
        // SJF minimizes mean waiting time relative to FCFS.
        assert!(
            sjf.summary.overall_slowdown.mean < cf.summary.overall_slowdown.mean,
            "sjf {} vs cfcfs {}",
            sjf.summary.overall_slowdown.mean,
            cf.summary.overall_slowdown.mean
        );
    }

    #[test]
    fn fifo_among_equal_lengths() {
        // With one constant type SJF degenerates to FCFS: equal keys must
        // break ties by arrival order, which the seq counter guarantees.
        let mut h: BinaryHeap<Reverse<(Nanos, u64, ReqId)>> = BinaryHeap::new();
        h.push(Reverse((Nanos::from_micros(1), 0, 10)));
        h.push(Reverse((Nanos::from_micros(1), 1, 11)));
        h.push(Reverse((Nanos::from_micros(1), 2, 12)));
        assert_eq!(h.pop().unwrap().0 .2, 10);
        assert_eq!(h.pop().unwrap().0 .2, 11);
        assert_eq!(h.pop().unwrap().0 .2, 12);
    }
}
