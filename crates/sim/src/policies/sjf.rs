//! Non-preemptive Shortest-Job-First (SJF) by profiled type.
//!
//! A comparison point from Table 5: pending requests are dequeued in
//! ascending order of their *type's* mean service time, seeded here from
//! the workload's declared means (what a converged profiler would
//! report). Running requests are never preempted, so SJF still lets an
//! unlucky short request block behind `W` in-flight longs.
//!
//! Thin adapter over the shared [`SjfEngine`]: the simulator runs the
//! exact typed-queue selection code the threaded runtime runs under
//! `ServerBuilder::policy(Policy::Sjf)`.

use persephone_core::dispatch::{EngineConfig, SjfEngine};
use persephone_core::time::Nanos;

use super::EngineAdapter;
use crate::engine::{Core, Event, ReqId, SimPolicy};
use crate::workload::Workload;

/// The SJF policy (type-mean service times).
pub struct Sjf {
    inner: EngineAdapter<SjfEngine<ReqId>>,
    workers: usize,
    hints: Vec<Option<Nanos>>,
}

impl Sjf {
    /// Creates an SJF policy over `workers` cores; type service times come
    /// from the workload's declared means.
    pub fn new(workload: &Workload, workers: usize) -> Self {
        Sjf::build(workload.hints(), workers, 0)
    }

    /// Bounds each typed queue (`0` = unbounded). Call right after the
    /// constructor, before the first event.
    pub fn with_capacity(self, capacity: usize) -> Self {
        Sjf::build(self.hints, self.workers, capacity)
    }

    fn build(hints: Vec<Option<Nanos>>, workers: usize, capacity: usize) -> Self {
        let mut cfg = EngineConfig::darc(workers);
        cfg.queue_capacity = capacity;
        let n = hints.len();
        Sjf {
            inner: EngineAdapter::new(SjfEngine::new(cfg, n, &hints)),
            workers,
            hints,
        }
    }
}

impl SimPolicy for Sjf {
    fn name(&self) -> String {
        "SJF".into()
    }

    fn handle(&mut self, ev: Event, core: &mut Core) {
        self.inner.handle(ev, core);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use crate::workload::{ArrivalGen, Workload};

    #[test]
    fn sjf_orders_by_service_time() {
        let wl = Workload::high_bimodal();
        let dur = Nanos::from_millis(300);
        let sjf = {
            let gen = ArrivalGen::uniform(&wl, 4, 0.9, dur, 21);
            let mut p = Sjf::new(&wl, 4);
            simulate(&mut p, gen, 2, dur, &SimConfig::new(4))
        };
        let cf = {
            let gen = ArrivalGen::uniform(&wl, 4, 0.9, dur, 21);
            let mut p = super::super::cfcfs::CFcfs::new(4);
            simulate(&mut p, gen, 2, dur, &SimConfig::new(4))
        };
        // SJF minimizes mean waiting time relative to FCFS.
        assert!(
            sjf.summary.overall_slowdown.mean < cf.summary.overall_slowdown.mean,
            "sjf {} vs cfcfs {}",
            sjf.summary.overall_slowdown.mean,
            cf.summary.overall_slowdown.mean
        );
    }

    #[test]
    fn degenerates_to_fcfs_for_a_single_type() {
        // With one type every queue key is equal, so SJF must break ties
        // by arrival order — identical completions to c-FCFS on the same
        // arrival trace.
        use crate::dist::Dist;
        use crate::workload::TypeMix;
        let wl = Workload::new(
            "uni",
            vec![TypeMix::new(
                "X",
                1.0,
                Dist::Exponential(Nanos::from_micros(10)),
            )],
        );
        let dur = Nanos::from_millis(100);
        let sjf = {
            let gen = ArrivalGen::uniform(&wl, 4, 0.8, dur, 5);
            let mut p = Sjf::new(&wl, 4);
            simulate(&mut p, gen, 1, dur, &SimConfig::new(4))
        };
        let cf = {
            let gen = ArrivalGen::uniform(&wl, 4, 0.8, dur, 5);
            let mut p = super::super::cfcfs::CFcfs::new(4);
            simulate(&mut p, gen, 1, dur, &SimConfig::new(4))
        };
        assert_eq!(sjf.completions, cf.completions);
        assert_eq!(
            sjf.summary.per_type[0].latency_ns.p999, cf.summary.per_type[0].latency_ns.p999,
            "one-type SJF must replay c-FCFS exactly"
        );
    }
}
