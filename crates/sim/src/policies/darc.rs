//! DARC under simulation — driving the *real* `persephone_core` engine.
//!
//! Unlike the other policy modules, this one contains almost no scheduling
//! logic of its own: arrivals are classified and pushed into a
//! [`DarcEngine`], and every dispatch decision the engine makes is
//! executed on the simulated cores. The simulator therefore exercises the
//! exact code a Perséphone deployment runs: typed queues, c-FCFS warm-up,
//! profiling windows, reservation updates, cycle stealing, spillway
//! routing, and flow control.

use persephone_core::dispatch::{DarcEngine, EngineConfig, EngineMode};
use persephone_core::reserve::Reservation;
use persephone_core::time::Nanos;
use persephone_core::types::{TypeId, WorkerId};

use crate::engine::{Core, Event, ReqId, SimPolicy};
use crate::rng::Rng;
use crate::workload::Workload;

/// How arrivals are classified before entering the typed queues.
pub enum ClassifyMode {
    /// Perfect classification: the request's true type.
    Exact,
    /// The broken classifier of paper §5.6 (Figure 9): a uniformly random
    /// type, which makes DARC converge to c-FCFS.
    Random(Rng),
}

/// The DARC simulation policy.
pub struct DarcSim {
    engine: DarcEngine<ReqId>,
    classify: ClassifyMode,
    num_types: usize,
    last_updates: u64,
    /// `(time, per-type reserved-core counts)` recorded at every
    /// reservation change — the bottom row of the paper's Figure 7.
    reservation_log: Vec<(Nanos, Vec<usize>)>,
    label: String,
    /// Construction parameters, kept so `with_capacity` can rebuild.
    boot: Option<(EngineConfig, Vec<Option<Nanos>>)>,
}

impl DarcSim {
    /// Full dynamic DARC: boots in c-FCFS, profiles `min_samples`
    /// completions, then reserves and keeps adapting (the paper's default
    /// configuration).
    pub fn dynamic(workload: &Workload, workers: usize, min_samples: u64) -> Self {
        let mut cfg = EngineConfig::darc(workers);
        cfg.profiler.min_samples = min_samples;
        let n = workload.num_types();
        DarcSim::from_config(cfg, vec![None; n], ClassifyMode::Exact, "DARC".into())
    }

    /// Rebuilds this policy with bounded typed queues (`0` = unbounded) —
    /// the paper's §4.3.3 flow control. Call right after a constructor,
    /// before the first event.
    ///
    /// # Panics
    ///
    /// Panics on policies built via [`DarcSim::with_engine`], whose
    /// construction parameters are not retained.
    pub fn with_capacity(self, capacity: usize) -> Self {
        let (mut cfg, hints) = self
            .boot
            .expect("with_capacity requires a config-built DarcSim");
        cfg.queue_capacity = capacity;
        DarcSim::from_config(cfg, hints, self.classify, self.label)
    }

    /// Dynamic DARC seeded with the workload's declared mean service
    /// times: skips the warm-up and reserves immediately (uniform ratios
    /// until the first window commits).
    pub fn hinted(workload: &Workload, workers: usize) -> Self {
        let cfg = EngineConfig::darc(workers);
        DarcSim::from_config(
            cfg,
            workload.hints(),
            ClassifyMode::Exact,
            "DARC-hinted".into(),
        )
    }

    /// "DARC-static" (paper §5.3): `reserved_short` cores are manually
    /// dedicated to the shortest type, which may additionally run
    /// anywhere; all other types share the remaining cores.
    pub fn fixed(workload: &Workload, workers: usize, reserved_short: usize) -> Self {
        let n = workload.num_types();
        let short = (0..n)
            .min_by_key(|&i| workload.types[i].service.mean())
            .expect("non-empty workload");
        let res =
            Reservation::two_class_static(n, workers, TypeId::new(short as u32), reserved_short);
        let cfg = EngineConfig {
            mode: EngineMode::Static(res),
            ..EngineConfig::darc(workers)
        };
        DarcSim::from_config(
            cfg,
            vec![None; n],
            ClassifyMode::Exact,
            format!("DARC-static-{reserved_short}"),
        )
    }

    /// Dynamic DARC with the broken random classifier of Figure 9.
    pub fn random_classifier(
        workload: &Workload,
        workers: usize,
        min_samples: u64,
        seed: u64,
    ) -> Self {
        let mut s = DarcSim::dynamic(workload, workers, min_samples);
        s.classify = ClassifyMode::Random(Rng::new(seed));
        s.label = "DARC-random".into();
        s
    }

    /// Builds a policy from explicit engine parameters (retained for
    /// [`DarcSim::with_capacity`] rebuilds).
    pub fn from_config(
        cfg: EngineConfig,
        hints: Vec<Option<Nanos>>,
        classify: ClassifyMode,
        label: String,
    ) -> Self {
        let n = hints.len();
        let engine = DarcEngine::new(cfg.clone(), n, &hints);
        let mut s = DarcSim::with_engine(engine, classify, n, label);
        s.boot = Some((cfg, hints));
        s
    }

    /// Wraps an arbitrary pre-configured engine (tests, custom setups).
    pub fn with_engine(
        engine: DarcEngine<ReqId>,
        classify: ClassifyMode,
        num_types: usize,
        label: String,
    ) -> Self {
        let last_updates = engine.updates();
        let mut s = DarcSim {
            engine,
            classify,
            num_types,
            last_updates,
            reservation_log: Vec::new(),
            label,
            boot: None,
        };
        s.log_reservation(Nanos::ZERO);
        s
    }

    /// Attaches a shared telemetry recorder to the underlying engine, so
    /// the simulation populates the same histograms, counters, and event
    /// ring a live runtime would. Attach *after* [`DarcSim::with_capacity`]
    /// (rebuilds discard the engine, and its telemetry with it).
    pub fn attach_telemetry(&mut self, telemetry: std::sync::Arc<persephone_telemetry::Telemetry>) {
        self.engine.set_telemetry(telemetry);
    }

    /// Read access to the underlying engine (reservations, drops, waste).
    pub fn engine(&self) -> &DarcEngine<ReqId> {
        &self.engine
    }

    /// The reservation-change log: `(time, reserved cores per type)`.
    pub fn reservation_log(&self) -> &[(Nanos, Vec<usize>)] {
        &self.reservation_log
    }

    fn log_reservation(&mut self, now: Nanos) {
        let counts: Vec<usize> = (0..self.num_types)
            .map(|i| self.engine.guaranteed_workers(TypeId::new(i as u32)))
            .collect();
        self.reservation_log.push((now, counts));
    }

    fn drain(&mut self, core: &mut Core) {
        while let Some(d) = self.engine.poll(core.now) {
            core.run(d.worker.index(), d.req);
        }
    }
}

impl SimPolicy for DarcSim {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn handle(&mut self, ev: Event, core: &mut Core) {
        match ev {
            Event::Arrival(id) => {
                let ty = match &mut self.classify {
                    ClassifyMode::Exact => core.req(id).ty,
                    ClassifyMode::Random(rng) => {
                        TypeId::new(rng.next_below(self.num_types as u64) as u32)
                    }
                };
                if let Err(rejected) = self.engine.enqueue(ty, id, core.now) {
                    core.drop_req(rejected);
                }
                self.drain(core);
            }
            Event::Completed {
                worker, service, ..
            } => {
                self.engine
                    .complete(WorkerId::new(worker as u32), service, core.now);
                if self.engine.updates() != self.last_updates {
                    self.last_updates = self.engine.updates();
                    self.log_reservation(core.now);
                }
                self.drain(core);
            }
            Event::SliceExpired { .. } | Event::Timer(_) => {
                unreachable!("DARC is non-preemptive")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig, SimOutput};
    use crate::workload::ArrivalGen;

    fn run(
        policy: &mut dyn SimPolicy,
        wl: &Workload,
        workers: usize,
        load: f64,
        ms: u64,
        seed: u64,
    ) -> SimOutput {
        let dur = Nanos::from_millis(ms);
        let gen = ArrivalGen::uniform(wl, workers, load, dur, seed);
        simulate(policy, gen, wl.num_types(), dur, &SimConfig::new(workers))
    }

    #[test]
    fn darc_protects_short_requests_at_high_load() {
        let wl = Workload::extreme_bimodal();
        let mut darc = DarcSim::dynamic(&wl, 8, 5_000);
        let out = run(&mut darc, &wl, 8, 0.85, 100, 4);
        let mut cf = super::super::cfcfs::CFcfs::new(8);
        let out_cf = run(&mut cf, &wl, 8, 0.85, 100, 4);
        let darc_short = out.summary.per_type[0].slowdown.p999;
        let cf_short = out_cf.summary.per_type[0].slowdown.p999;
        assert!(
            darc_short < cf_short / 3.0,
            "DARC short p999 {darc_short} must be ≪ c-FCFS {cf_short}"
        );
    }

    #[test]
    fn warmup_then_reservation_is_logged() {
        let wl = Workload::extreme_bimodal();
        let mut darc = DarcSim::dynamic(&wl, 8, 5_000);
        let _ = run(&mut darc, &wl, 8, 0.6, 50, 5);
        let log = darc.reservation_log();
        // Boot entry plus at least the warm-up-exit reservation.
        assert!(log.len() >= 2, "log = {log:?}");
        let final_counts = &log.last().unwrap().1;
        // Extreme Bimodal on 8 workers: short demand ≈ 0.166×8 ≈ 1.33 ⇒ 1
        // reserved core (±1 for occurrence-ratio sampling noise: only ~25
        // long completions land in each profiling window).
        assert!(
            (1..=2).contains(&final_counts[0]),
            "short reserved cores = {}",
            final_counts[0]
        );
        assert!(
            final_counts[1] >= 5,
            "long reserved cores = {}",
            final_counts[1]
        );
    }

    #[test]
    fn static_reservations_follow_the_requested_count() {
        let wl = Workload::high_bimodal();
        let mut darc = DarcSim::fixed(&wl, 8, 3);
        let _ = run(&mut darc, &wl, 8, 0.5, 30, 6);
        assert_eq!(darc.engine().guaranteed_workers(TypeId::new(0)), 3);
        assert_eq!(darc.engine().guaranteed_workers(TypeId::new(1)), 5);
        assert_eq!(darc.engine().updates(), 1, "static mode never re-reserves");
    }

    #[test]
    fn random_classifier_behaves_like_cfcfs() {
        // Figure 9: with a broken classifier every typed queue holds an
        // even mix, so DARC-random ≈ c-FCFS (same order of magnitude).
        let wl = Workload::high_bimodal();
        let mut rnd = DarcSim::random_classifier(&wl, 8, 2_000, 99);
        let out_rnd = run(&mut rnd, &wl, 8, 0.8, 200, 7);
        let mut cf = super::super::cfcfs::CFcfs::new(8);
        let out_cf = run(&mut cf, &wl, 8, 0.8, 200, 7);
        let r = out_rnd.summary.overall_slowdown.p999;
        let c = out_cf.summary.overall_slowdown.p999;
        assert!(
            r / c < 4.0 && c / r < 4.0,
            "DARC-random p999 {r} should track c-FCFS {c}"
        );
        // And a *correct* classifier does much better than both.
        let mut darc = DarcSim::dynamic(&wl, 8, 2_000);
        let out_darc = run(&mut darc, &wl, 8, 0.8, 200, 7);
        assert!(out_darc.summary.overall_slowdown.p999 < r / 2.0);
    }

    #[test]
    fn hinted_darc_reserves_at_boot() {
        let wl = Workload::high_bimodal();
        let darc = DarcSim::hinted(&wl, 14);
        assert_eq!(darc.engine().guaranteed_workers(TypeId::new(0)), 1);
        assert!(!darc.engine().in_warmup());
    }

    #[test]
    fn flow_control_drops_are_visible_in_summary() {
        let wl = Workload::extreme_bimodal();
        let mut cfg = EngineConfig::darc(2);
        cfg.queue_capacity = 4;
        cfg.profiler.min_samples = 1_000;
        let eng = DarcEngine::new(cfg, 2, &[None; 2]);
        let mut darc = DarcSim::with_engine(eng, ClassifyMode::Exact, 2, "DARC-bounded".into());
        // Offered 3× capacity: the bounded queues must shed load.
        let out = run(&mut darc, &wl, 2, 3.0, 20, 8);
        assert!(out.summary.dropped > 0, "overload must drop");
        assert!(out.completions > 0);
    }
}
