//! Fixed Priority (FP) by request type, work conserving.
//!
//! Short types are always dequeued before long types, but every type may
//! run on every worker — equivalent to "DARC-static with 0 reserved
//! cores" (paper §5.3). FP still suffers dispersion-based head-of-line
//! blocking: once long requests occupy all workers, arriving shorts wait.

use std::collections::VecDeque;

use crate::engine::{Core, Event, ReqId, SimPolicy};
use crate::workload::Workload;

/// The fixed-priority policy.
pub struct FixedPriority {
    /// Typed queues, indexed by type id.
    queues: Vec<VecDeque<ReqId>>,
    /// Type ids in ascending mean-service order.
    order: Vec<usize>,
    capacity: usize,
}

impl FixedPriority {
    /// Creates an FP policy; priorities follow the workload's declared
    /// mean service times, ascending.
    pub fn new(workload: &Workload) -> Self {
        let mut order: Vec<usize> = (0..workload.num_types()).collect();
        order.sort_by(|&a, &b| {
            workload.types[a]
                .service
                .mean()
                .cmp(&workload.types[b].service.mean())
        });
        FixedPriority {
            queues: vec![VecDeque::new(); workload.num_types()],
            order,
            capacity: 0,
        }
    }

    /// Bounds each typed queue (`0` = unbounded).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    fn pop_highest(&mut self) -> Option<ReqId> {
        for &t in &self.order {
            if let Some(id) = self.queues[t].pop_front() {
                return Some(id);
            }
        }
        None
    }
}

impl SimPolicy for FixedPriority {
    fn name(&self) -> String {
        "FP".into()
    }

    fn handle(&mut self, ev: Event, core: &mut Core) {
        match ev {
            Event::Arrival(id) => {
                if let Some(w) = core.idle_worker() {
                    core.run(w, id);
                } else {
                    let ty = core.req(id).ty.index();
                    if self.capacity != 0 && self.queues[ty].len() >= self.capacity {
                        core.drop_req(id);
                    } else {
                        self.queues[ty].push_back(id);
                    }
                }
            }
            Event::Completed { worker, .. } => {
                if let Some(next) = self.pop_highest() {
                    core.run(worker, next);
                }
            }
            Event::SliceExpired { .. } | Event::Timer(_) => {
                unreachable!("FP never slices or sets timers")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use crate::workload::{ArrivalGen, Workload};
    use persephone_core::time::Nanos;

    #[test]
    fn shorts_beat_longs_under_fp() {
        let wl = Workload::high_bimodal();
        let dur = Nanos::from_millis(300);
        let gen = ArrivalGen::uniform(&wl, 8, 0.9, dur, 3);
        let mut p = FixedPriority::new(&wl);
        let out = simulate(&mut p, gen, 2, dur, &SimConfig::new(8));
        let short = &out.summary.per_type[0];
        let long = &out.summary.per_type[1];
        assert!(
            short.latency_ns.p50 < long.latency_ns.p50,
            "short p50 {} must beat long p50 {}",
            short.latency_ns.p50,
            long.latency_ns.p50
        );
    }

    #[test]
    fn fp_improves_short_tail_over_cfcfs() {
        let wl = Workload::high_bimodal();
        let dur = Nanos::from_millis(300);
        let fp = {
            let gen = ArrivalGen::uniform(&wl, 8, 0.85, dur, 17);
            let mut p = FixedPriority::new(&wl);
            simulate(&mut p, gen, 2, dur, &SimConfig::new(8))
        };
        let cf = {
            let gen = ArrivalGen::uniform(&wl, 8, 0.85, dur, 17);
            let mut p = super::super::cfcfs::CFcfs::new();
            simulate(&mut p, gen, 2, dur, &SimConfig::new(8))
        };
        assert!(
            fp.summary.per_type[0].slowdown.p999 < cf.summary.per_type[0].slowdown.p999,
            "fp {} vs cfcfs {}",
            fp.summary.per_type[0].slowdown.p999,
            cf.summary.per_type[0].slowdown.p999
        );
    }

    #[test]
    fn priority_order_sorts_by_service_time() {
        let wl = Workload::tpcc();
        let p = FixedPriority::new(&wl);
        assert_eq!(p.order, vec![0, 1, 2, 3, 4], "TPC-C types are pre-sorted");
    }
}
