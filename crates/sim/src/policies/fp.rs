//! Fixed Priority (FP) by request type, work conserving.
//!
//! Short types are always dequeued before long types, but every type may
//! run on every worker — equivalent to "DARC-static with 0 reserved
//! cores" (paper §5.3). FP still suffers dispersion-based head-of-line
//! blocking: once long requests occupy all workers, arriving shorts wait.
//!
//! Thin adapter over the shared [`FixedPriorityEngine`]: the simulator
//! runs the exact priority-scan code the threaded runtime runs under
//! `ServerBuilder::policy(Policy::FixedPriority)`.

use persephone_core::dispatch::{EngineConfig, FixedPriorityEngine};
use persephone_core::time::Nanos;

use super::EngineAdapter;
use crate::engine::{Core, Event, ReqId, SimPolicy};
use crate::workload::Workload;

/// The fixed-priority policy.
pub struct FixedPriority {
    inner: EngineAdapter<FixedPriorityEngine<ReqId>>,
    workers: usize,
    hints: Vec<Option<Nanos>>,
}

impl FixedPriority {
    /// Creates an FP policy over `workers` cores; priorities follow the
    /// workload's declared mean service times, ascending.
    pub fn new(workload: &Workload, workers: usize) -> Self {
        FixedPriority::build(workload.hints(), workers, 0)
    }

    /// Bounds each typed queue (`0` = unbounded). Call right after the
    /// constructor, before the first event.
    pub fn with_capacity(self, capacity: usize) -> Self {
        FixedPriority::build(self.hints, self.workers, capacity)
    }

    fn build(hints: Vec<Option<Nanos>>, workers: usize, capacity: usize) -> Self {
        let mut cfg = EngineConfig::darc(workers);
        cfg.queue_capacity = capacity;
        let n = hints.len();
        FixedPriority {
            inner: EngineAdapter::new(FixedPriorityEngine::new(cfg, n, &hints)),
            workers,
            hints,
        }
    }

    /// Type ids in descending priority (ascending mean-service) order.
    pub fn priority_order(&self) -> &[usize] {
        self.inner.engine().priority_order()
    }
}

impl SimPolicy for FixedPriority {
    fn name(&self) -> String {
        "FP".into()
    }

    fn handle(&mut self, ev: Event, core: &mut Core) {
        self.inner.handle(ev, core);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use crate::workload::{ArrivalGen, Workload};
    use persephone_core::time::Nanos;

    #[test]
    fn shorts_beat_longs_under_fp() {
        let wl = Workload::high_bimodal();
        let dur = Nanos::from_millis(300);
        let gen = ArrivalGen::uniform(&wl, 8, 0.9, dur, 3);
        let mut p = FixedPriority::new(&wl, 8);
        let out = simulate(&mut p, gen, 2, dur, &SimConfig::new(8));
        let short = &out.summary.per_type[0];
        let long = &out.summary.per_type[1];
        assert!(
            short.latency_ns.p50 < long.latency_ns.p50,
            "short p50 {} must beat long p50 {}",
            short.latency_ns.p50,
            long.latency_ns.p50
        );
    }

    #[test]
    fn fp_improves_short_tail_over_cfcfs() {
        let wl = Workload::high_bimodal();
        let dur = Nanos::from_millis(300);
        let fp = {
            let gen = ArrivalGen::uniform(&wl, 8, 0.85, dur, 17);
            let mut p = FixedPriority::new(&wl, 8);
            simulate(&mut p, gen, 2, dur, &SimConfig::new(8))
        };
        let cf = {
            let gen = ArrivalGen::uniform(&wl, 8, 0.85, dur, 17);
            let mut p = super::super::cfcfs::CFcfs::new(8);
            simulate(&mut p, gen, 2, dur, &SimConfig::new(8))
        };
        assert!(
            fp.summary.per_type[0].slowdown.p999 < cf.summary.per_type[0].slowdown.p999,
            "fp {} vs cfcfs {}",
            fp.summary.per_type[0].slowdown.p999,
            cf.summary.per_type[0].slowdown.p999
        );
    }

    #[test]
    fn priority_order_sorts_by_service_time() {
        let wl = Workload::tpcc();
        let p = FixedPriority::new(&wl, 8);
        assert_eq!(
            p.priority_order(),
            &[0, 1, 2, 3, 4],
            "TPC-C types are pre-sorted"
        );
    }
}
