//! Cycle Stealing with Central Queue (CSCQ) — Harchol-Balter et al.,
//! SPAA'03, the policy DARC credits for its stealing mechanism (paper §3,
//! Table 5).
//!
//! Two job classes with dedicated servers; the *beneficiary* class (longs)
//! may additionally run on the *donor* servers (shorts') whenever no
//! donor job is waiting. The donor class never runs on beneficiary
//! servers. DARC inverts and generalizes the idea: in DARC it is the
//! *short* requests that steal from cores reserved for longer groups, and
//! stealing is unlimited for them.

use std::collections::VecDeque;

use crate::engine::{Core, Event, ReqId, SimPolicy};

/// The CSCQ policy over exactly two classes (type 0 = donor/short,
/// type 1 = beneficiary/long).
pub struct Cscq {
    short_q: VecDeque<ReqId>,
    long_q: VecDeque<ReqId>,
    /// Workers `0..donor_servers` belong to the donor (short) class.
    donor_servers: usize,
    capacity: usize,
}

impl Cscq {
    /// Creates a CSCQ policy with `donor_servers` of the machine's workers
    /// dedicated to the short class.
    pub fn new(donor_servers: usize) -> Self {
        Cscq {
            short_q: VecDeque::new(),
            long_q: VecDeque::new(),
            donor_servers,
            capacity: 0,
        }
    }

    /// Bounds each class queue (`0` = unbounded).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    fn idle_in(&self, core: &Core, range: std::ops::Range<usize>) -> Option<usize> {
        range.into_iter().find(|&w| core.worker_idle(w))
    }

    fn dispatch_all(&mut self, core: &mut Core) {
        loop {
            let mut progressed = false;
            // Shorts on their own servers first.
            if !self.short_q.is_empty() {
                if let Some(w) = self.idle_in(core, 0..self.donor_servers) {
                    let id = self.short_q.pop_front().unwrap();
                    core.run(w, id);
                    progressed = true;
                }
            }
            // Longs on their own servers.
            if !self.long_q.is_empty() {
                if let Some(w) = self.idle_in(core, self.donor_servers..core.num_workers()) {
                    let id = self.long_q.pop_front().unwrap();
                    core.run(w, id);
                    progressed = true;
                }
            }
            // Cycle stealing: a long may take a donor server, but only
            // when no short is waiting for it.
            if self.short_q.is_empty() && !self.long_q.is_empty() {
                if let Some(w) = self.idle_in(core, 0..self.donor_servers) {
                    let id = self.long_q.pop_front().unwrap();
                    core.run(w, id);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
    }
}

impl SimPolicy for Cscq {
    fn name(&self) -> String {
        format!("CSCQ-{}", self.donor_servers)
    }

    fn handle(&mut self, ev: Event, core: &mut Core) {
        match ev {
            Event::Arrival(id) => {
                let is_short = core.req(id).ty.index() == 0;
                let q = if is_short {
                    &mut self.short_q
                } else {
                    &mut self.long_q
                };
                if self.capacity != 0 && q.len() >= self.capacity {
                    core.drop_req(id);
                } else {
                    q.push_back(id);
                }
                self.dispatch_all(core);
            }
            Event::Completed { .. } => {
                self.dispatch_all(core);
            }
            Event::SliceExpired { .. } | Event::Timer(_) => {
                unreachable!("CSCQ never slices or sets timers")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use crate::workload::{ArrivalGen, Workload};
    use persephone_core::time::Nanos;

    #[test]
    fn cscq_protects_shorts_like_a_partition() {
        let wl = Workload::high_bimodal();
        let dur = Nanos::from_millis(300);
        let cscq = {
            let gen = ArrivalGen::uniform(&wl, 8, 0.85, dur, 7);
            let mut p = Cscq::new(1);
            simulate(&mut p, gen, 2, dur, &SimConfig::new(8))
        };
        let cf = {
            let gen = ArrivalGen::uniform(&wl, 8, 0.85, dur, 7);
            let mut p = super::super::cfcfs::CFcfs::new(8);
            simulate(&mut p, gen, 2, dur, &SimConfig::new(8))
        };
        assert!(
            cscq.summary.per_type[0].slowdown.p999 < cf.summary.per_type[0].slowdown.p999,
            "CSCQ short tail {} !< c-FCFS {}",
            cscq.summary.per_type[0].slowdown.p999,
            cf.summary.per_type[0].slowdown.p999
        );
    }

    /// DARC beats CSCQ for short-request tails because DARC's stealing
    /// direction lets shorts absorb bursts on long cores, while CSCQ only
    /// lets longs borrow the short core (paper §7: DARC "does not impose
    /// limits on stealing for shorter requests").
    #[test]
    fn darc_stealing_direction_beats_cscq_for_short_bursts() {
        let wl = Workload::high_bimodal();
        let dur = Nanos::from_millis(300);
        let cscq = {
            let gen = ArrivalGen::uniform(&wl, 8, 0.9, dur, 13);
            let mut p = Cscq::new(1);
            simulate(&mut p, gen, 2, dur, &SimConfig::new(8))
        };
        let darc = {
            let gen = ArrivalGen::uniform(&wl, 8, 0.9, dur, 13);
            let mut p = super::super::darc::DarcSim::dynamic(&wl, 8, 3_000);
            simulate(&mut p, gen, 2, dur, &SimConfig::new(8))
        };
        assert!(
            darc.summary.per_type[0].slowdown.p999 <= cscq.summary.per_type[0].slowdown.p999 * 1.5,
            "DARC {} should not lose badly to CSCQ {}",
            darc.summary.per_type[0].slowdown.p999,
            cscq.summary.per_type[0].slowdown.p999
        );
    }

    #[test]
    fn longs_steal_only_when_no_short_waits() {
        let wl = Workload::high_bimodal();
        let dur = Nanos::from_millis(100);
        let gen = ArrivalGen::uniform(&wl, 2, 0.5, dur, 3);
        let mut p = Cscq::new(1);
        let out = simulate(&mut p, gen, 2, dur, &SimConfig::new(2));
        assert!(out.completions > 100);
        // Both classes complete work on a 2-worker machine.
        assert!(out.summary.per_type[0].latency_ns.count > 0);
        assert!(out.summary.per_type[1].latency_ns.count > 0);
    }
}
