//! Non-preemptive Earliest-Deadline-First (EDF) — Table 5.
//!
//! Each request's deadline is its arrival time plus a per-type relative
//! deadline (here: a slowdown target × the type's declared mean service
//! time). The dispatcher always starts the pending request with the
//! earliest absolute deadline. As Table 5 notes, EDF "can lead to
//! priority inversion": a long request whose deadline has almost expired
//! beats every fresh short request, and once running it cannot be
//! preempted.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use persephone_core::time::Nanos;

use crate::engine::{Core, Event, ReqId, SimPolicy};
use crate::workload::Workload;

/// The EDF policy.
pub struct Edf {
    heap: BinaryHeap<Reverse<(Nanos, u64, ReqId)>>,
    /// Relative deadline per type, ns.
    relative: Vec<Nanos>,
    seq: u64,
    capacity: usize,
}

impl Edf {
    /// Creates an EDF policy with relative deadlines of
    /// `slowdown_target ×` each type's declared mean service time.
    pub fn new(workload: &Workload, slowdown_target: f64) -> Self {
        let relative = workload
            .types
            .iter()
            .map(|t| {
                Nanos::from_nanos(
                    (t.service.mean().as_nanos() as f64 * slowdown_target.max(1.0)) as u64,
                )
            })
            .collect();
        Edf {
            heap: BinaryHeap::new(),
            relative,
            seq: 0,
            capacity: 0,
        }
    }

    /// Bounds the pending heap (`0` = unbounded).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    fn deadline(&self, core: &Core, id: ReqId) -> Nanos {
        let req = core.req(id);
        let rel = self
            .relative
            .get(req.ty.index())
            .copied()
            .unwrap_or(Nanos::from_millis(1));
        req.arrival.saturating_add(rel)
    }
}

impl SimPolicy for Edf {
    fn name(&self) -> String {
        "EDF".into()
    }

    fn handle(&mut self, ev: Event, core: &mut Core) {
        match ev {
            Event::Arrival(id) => {
                if let Some(w) = core.idle_worker() {
                    core.run(w, id);
                } else if self.capacity != 0 && self.heap.len() >= self.capacity {
                    core.drop_req(id);
                } else {
                    let d = self.deadline(core, id);
                    self.seq += 1;
                    self.heap.push(Reverse((d, self.seq, id)));
                }
            }
            Event::Completed { worker, .. } => {
                if let Some(Reverse((_, _, next))) = self.heap.pop() {
                    core.run(worker, next);
                }
            }
            Event::SliceExpired { .. } | Event::Timer(_) => {
                unreachable!("EDF never slices or sets timers")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use crate::workload::ArrivalGen;

    #[test]
    fn edf_serves_everything_and_orders_by_deadline() {
        let wl = Workload::high_bimodal();
        let dur = Nanos::from_millis(200);
        let gen = ArrivalGen::uniform(&wl, 8, 0.8, dur, 3);
        let mut p = Edf::new(&wl, 10.0);
        let out = simulate(&mut p, gen, 2, dur, &SimConfig::new(8));
        assert!(out.completions > 1_000);
        // Tight per-type deadlines favor shorts: their p50 must beat longs.
        assert!(out.summary.per_type[0].latency_ns.p50 < out.summary.per_type[1].latency_ns.p50);
    }

    #[test]
    fn edf_with_type_proportional_deadlines_prioritizes_shorts() {
        // Compared with c-FCFS at high load, EDF's 10× relative deadlines
        // give short requests an earlier absolute deadline, improving
        // their tail.
        let wl = Workload::high_bimodal();
        let dur = Nanos::from_millis(300);
        let edf = {
            let gen = ArrivalGen::uniform(&wl, 8, 0.9, dur, 11);
            let mut p = Edf::new(&wl, 10.0);
            simulate(&mut p, gen, 2, dur, &SimConfig::new(8))
        };
        let cf = {
            let gen = ArrivalGen::uniform(&wl, 8, 0.9, dur, 11);
            let mut p = super::super::cfcfs::CFcfs::new(8);
            simulate(&mut p, gen, 2, dur, &SimConfig::new(8))
        };
        assert!(
            edf.summary.per_type[0].slowdown.p999 < cf.summary.per_type[0].slowdown.p999,
            "EDF short tail {} !< c-FCFS {}",
            edf.summary.per_type[0].slowdown.p999,
            cf.summary.per_type[0].slowdown.p999
        );
    }

    #[test]
    fn capacity_bound_drops() {
        let wl = Workload::high_bimodal();
        let dur = Nanos::from_millis(100);
        let gen = ArrivalGen::uniform(&wl, 1, 3.0, dur, 5);
        let mut p = Edf::new(&wl, 10.0).with_capacity(16);
        let out = simulate(&mut p, gen, 2, dur, &SimConfig::new(1));
        assert!(out.summary.dropped > 0, "3x overload must shed");
    }
}
