//! The discrete-event simulation engine.
//!
//! The engine owns simulated time, the event heap, the request slab, the
//! worker states, and the metrics recorder. Scheduling policies implement
//! [`SimPolicy`] and react to four events: a request *arrival*, a worker
//! *completion*, a *slice expiry* (preemptive policies only), and policy
//! *timers*. Policies place work through [`Core::run`] (non-preemptive,
//! run to completion) or [`Core::run_slice`] (bounded slice plus optional
//! preemption overhead, for time-sharing policies).
//!
//! The paper's own Figures 1 and 10 come from exactly this kind of
//! simulation; we extend it to every evaluation figure.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use persephone_core::time::Nanos;
use persephone_core::types::TypeId;

use crate::metrics::{Recorder, RunSummary, Timeline};
use crate::workload::Arrival;

/// Index of a live request in the engine's slab.
pub type ReqId = u32;

/// A live request.
#[derive(Clone, Copy, Debug)]
pub struct Req {
    /// True request type (what the workload generated).
    pub ty: TypeId,
    /// Arrival time at the server.
    pub arrival: Nanos,
    /// Total service demand.
    pub service: Nanos,
    /// Remaining service demand (decremented by slices).
    pub remaining: Nanos,
    /// Number of times the request was preempted.
    pub preemptions: u32,
    active: bool,
}

#[derive(Clone, Copy, Debug)]
struct Running {
    req: ReqId,
    completes: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum EvKind {
    Arrival,
    SliceEnd { worker: u32 },
    Timer { tag: u64 },
}

/// Events a policy receives.
#[derive(Clone, Copy, Debug)]
pub enum Event {
    /// A request arrived at the dispatcher.
    Arrival(ReqId),
    /// `worker` completed `req` (already recorded and freed; its type and
    /// measured service time travel with the event).
    Completed {
        /// The worker that finished.
        worker: usize,
        /// The completed request's (now stale) id.
        req: ReqId,
        /// The request's true type.
        ty: TypeId,
        /// The request's total service time as executed.
        service: Nanos,
    },
    /// `worker`'s slice ended with work remaining; the request must be
    /// re-queued by the policy.
    SliceExpired {
        /// The worker whose slice expired.
        worker: usize,
        /// The preempted request.
        req: ReqId,
    },
    /// A timer scheduled via [`Core::timer`] fired.
    Timer(u64),
}

/// A scheduling policy under simulation.
pub trait SimPolicy {
    /// Display name for reports.
    fn name(&self) -> String;
    /// Reacts to an engine event.
    fn handle(&mut self, ev: Event, core: &mut Core);
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of worker cores.
    pub workers: usize,
    /// Fraction of the run (by arrival time) discarded as warm-up.
    pub warmup_fraction: f64,
    /// Extra reporting-only latency added per request (network RTT).
    pub rtt: Nanos,
    /// Record a per-type latency timeline with this bucket size.
    pub timeline_bucket: Option<Nanos>,
}

impl SimConfig {
    /// A config with the paper's defaults: 10 % warm-up, no network.
    pub fn new(workers: usize) -> Self {
        SimConfig {
            workers,
            warmup_fraction: 0.1,
            rtt: Nanos::ZERO,
            timeline_bucket: None,
        }
    }

    /// Sets the reporting-only round-trip latency.
    pub fn with_rtt(mut self, rtt: Nanos) -> Self {
        self.rtt = rtt;
        self
    }
}

/// The simulation core handed to policies.
pub struct Core {
    /// Current simulated time.
    pub now: Nanos,
    slab: Vec<Req>,
    free: Vec<ReqId>,
    heap: BinaryHeap<Reverse<(Nanos, u64, EvKind)>>,
    seq: u64,
    running: Vec<Option<Running>>,
    busy_ns: Vec<u64>,
    overhead_ns: Vec<u64>,
    recorder: Recorder,
    timeline: Option<Timeline>,
    live: u64,
    completions: u64,
    rtt: Nanos,
}

impl Core {
    fn push_ev(&mut self, at: Nanos, kind: EvKind) {
        self.seq += 1;
        self.heap.push(Reverse((at, self.seq, kind)));
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.running.len()
    }

    /// Whether `worker` is idle.
    pub fn worker_idle(&self, worker: usize) -> bool {
        self.running[worker].is_none()
    }

    /// The lowest-indexed idle worker, if any.
    pub fn idle_worker(&self) -> Option<usize> {
        self.running.iter().position(|r| r.is_none())
    }

    /// Number of idle workers.
    pub fn idle_count(&self) -> usize {
        self.running.iter().filter(|r| r.is_none()).count()
    }

    /// Read a live request.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not name a live request.
    pub fn req(&self, id: ReqId) -> &Req {
        let r = &self.slab[id as usize];
        assert!(r.active, "stale request id {id}");
        r
    }

    /// Runs `req` to completion on `worker` (non-preemptive policies).
    ///
    /// # Panics
    ///
    /// Panics if the worker is busy.
    pub fn run(&mut self, worker: usize, req: ReqId) {
        let remaining = self.req(req).remaining;
        self.start(worker, req, remaining, Nanos::ZERO, true);
    }

    /// Runs `req` on `worker` for at most `max_slice`. If the request
    /// cannot finish within the slice it is preempted: the worker
    /// additionally pays `preempt_overhead` (charged as overhead, not
    /// progress) and a [`Event::SliceExpired`] fires.
    ///
    /// # Panics
    ///
    /// Panics if the worker is busy or `max_slice` is zero.
    pub fn run_slice(
        &mut self,
        worker: usize,
        req: ReqId,
        max_slice: Nanos,
        preempt_overhead: Nanos,
    ) {
        assert!(max_slice > Nanos::ZERO, "zero-length slice");
        let remaining = self.req(req).remaining;
        if remaining <= max_slice {
            self.start(worker, req, remaining, Nanos::ZERO, true);
        } else {
            self.start(worker, req, max_slice, preempt_overhead, false);
        }
    }

    /// Like [`Core::run_slice`], but the worker first burns `pre_cost` of
    /// unproductive time *before* the request makes progress — the model
    /// for a context-switch cost paid when a preemption actually replaces
    /// the running request with another. No cost is charged at slice
    /// expiry.
    ///
    /// # Panics
    ///
    /// Panics if the worker is busy or `max_slice` is zero.
    pub fn run_slice_after(
        &mut self,
        worker: usize,
        req: ReqId,
        pre_cost: Nanos,
        max_slice: Nanos,
    ) {
        assert!(max_slice > Nanos::ZERO, "zero-length slice");
        let remaining = self.req(req).remaining;
        let (progress, completes) = if remaining <= max_slice {
            (remaining, true)
        } else {
            (max_slice, false)
        };
        self.start(worker, req, progress, pre_cost, completes);
    }

    fn start(
        &mut self,
        worker: usize,
        req: ReqId,
        progress: Nanos,
        overhead: Nanos,
        completes: bool,
    ) {
        assert!(
            self.running[worker].is_none(),
            "worker {worker} is already busy"
        );
        let r = &mut self.slab[req as usize];
        assert!(r.active, "running a stale request");
        r.remaining = r.remaining.saturating_sub(progress);
        if !completes {
            r.preemptions += 1;
        }
        self.running[worker] = Some(Running { req, completes });
        self.busy_ns[worker] += progress.as_nanos();
        self.overhead_ns[worker] += overhead.as_nanos();
        let end = self.now + progress + overhead;
        self.push_ev(
            end,
            EvKind::SliceEnd {
                worker: worker as u32,
            },
        );
    }

    /// Schedules a policy timer at absolute time `at`.
    pub fn timer(&mut self, at: Nanos, tag: u64) {
        self.push_ev(at.max(self.now), EvKind::Timer { tag });
    }

    /// Drops a request (flow control): records the drop and frees the slot.
    pub fn drop_req(&mut self, id: ReqId) {
        let r = &mut self.slab[id as usize];
        assert!(r.active, "dropping a stale request");
        r.active = false;
        self.free.push(id);
        self.live -= 1;
        self.recorder.drop_request();
    }

    /// Total completions so far (including warm-up ones).
    pub fn completions(&self) -> u64 {
        self.completions
    }

    fn alloc(&mut self, ty: TypeId, arrival: Nanos, service: Nanos) -> ReqId {
        self.live += 1;
        let req = Req {
            ty,
            arrival,
            service,
            remaining: service,
            preemptions: 0,
            active: true,
        };
        if let Some(id) = self.free.pop() {
            self.slab[id as usize] = req;
            id
        } else {
            self.slab.push(req);
            (self.slab.len() - 1) as ReqId
        }
    }

    fn finish(&mut self, id: ReqId) {
        let r = &mut self.slab[id as usize];
        debug_assert!(r.active && r.remaining == Nanos::ZERO);
        r.active = false;
        let (ty, arrival, service) = (r.ty, r.arrival, r.service);
        self.free.push(id);
        self.live -= 1;
        self.completions += 1;
        let sojourn = self.now.saturating_sub(arrival);
        self.recorder.complete(ty, arrival, sojourn, service);
        if let Some(tl) = &mut self.timeline {
            tl.record(ty, arrival, sojourn + self.rtt);
        }
    }
}

/// Result of a simulation run.
#[derive(Clone, Debug)]
pub struct SimOutput {
    /// Metric summary (latency percentiles, slowdowns, drops).
    pub summary: RunSummary,
    /// Wall-clock end of the simulation (last event time).
    pub end_time: Nanos,
    /// Productive busy time per worker.
    pub busy: Vec<Nanos>,
    /// Preemption/overhead time per worker.
    pub overhead: Vec<Nanos>,
    /// Total completions including warm-up.
    pub completions: u64,
    /// Optional per-type latency timeline.
    pub timeline: Option<Vec<(Nanos, Vec<crate::metrics::Percentiles>)>>,
}

impl SimOutput {
    /// Mean number of busy cores over the run (productive work only).
    pub fn mean_busy_cores(&self) -> f64 {
        if self.end_time == Nanos::ZERO {
            return 0.0;
        }
        self.busy.iter().map(|b| b.as_nanos() as f64).sum::<f64>() / self.end_time.as_nanos() as f64
    }

    /// Mean number of cores burned on preemption overhead.
    pub fn mean_overhead_cores(&self) -> f64 {
        if self.end_time == Nanos::ZERO {
            return 0.0;
        }
        self.overhead
            .iter()
            .map(|b| b.as_nanos() as f64)
            .sum::<f64>()
            / self.end_time.as_nanos() as f64
    }

    /// Busy fraction of one worker.
    pub fn worker_utilization(&self, worker: usize) -> f64 {
        if self.end_time == Nanos::ZERO {
            return 0.0;
        }
        (self.busy[worker].as_nanos() + self.overhead[worker].as_nanos()) as f64
            / self.end_time.as_nanos() as f64
    }
}

/// Runs a policy against an arrival stream until every request completes.
///
/// # Panics
///
/// Panics if the policy strands requests (queues non-empty with the event
/// heap exhausted) — that is a policy bug, not an overload condition.
pub fn simulate<I>(
    policy: &mut dyn SimPolicy,
    gen: I,
    num_types: usize,
    total_duration: Nanos,
    cfg: &SimConfig,
) -> SimOutput
where
    I: IntoIterator<Item = Arrival>,
{
    let mut gen = gen.into_iter();
    let warmup_end =
        Nanos::from_nanos((total_duration.as_nanos() as f64 * cfg.warmup_fraction) as u64);
    let mut core = Core {
        now: Nanos::ZERO,
        slab: Vec::with_capacity(1024),
        free: Vec::new(),
        heap: BinaryHeap::new(),
        seq: 0,
        running: vec![None; cfg.workers],
        busy_ns: vec![0; cfg.workers],
        overhead_ns: vec![0; cfg.workers],
        recorder: Recorder::new(num_types, warmup_end),
        timeline: cfg.timeline_bucket.map(|b| Timeline::new(b, num_types)),
        live: 0,
        completions: 0,
        rtt: cfg.rtt,
    };

    // Prime the first arrival.
    let mut pending = gen.next();
    if let Some(a) = pending {
        core.push_ev(a.at, EvKind::Arrival);
    }

    while let Some(Reverse((at, _, kind))) = core.heap.pop() {
        core.now = at;
        match kind {
            EvKind::Arrival => {
                let a = pending.take().expect("arrival event without data");
                let id = core.alloc(a.ty, a.at, a.service);
                // Schedule the next arrival before the policy runs so the
                // heap never starves while work remains.
                pending = gen.next();
                if let Some(n) = pending {
                    core.push_ev(n.at, EvKind::Arrival);
                }
                policy.handle(Event::Arrival(id), &mut core);
            }
            EvKind::SliceEnd { worker } => {
                let w = worker as usize;
                let run = core.running[w].take().expect("slice end on idle worker");
                if run.completes {
                    let r = &core.slab[run.req as usize];
                    let (ty, service) = (r.ty, r.service);
                    core.finish(run.req);
                    policy.handle(
                        Event::Completed {
                            worker: w,
                            req: run.req,
                            ty,
                            service,
                        },
                        &mut core,
                    );
                } else {
                    policy.handle(
                        Event::SliceExpired {
                            worker: w,
                            req: run.req,
                        },
                        &mut core,
                    );
                }
            }
            EvKind::Timer { tag } => {
                policy.handle(Event::Timer(tag), &mut core);
            }
        }
    }

    assert!(
        core.live == 0,
        "policy {} stranded {} requests",
        policy.name(),
        core.live
    );

    SimOutput {
        summary: core.recorder.summarize(cfg.rtt),
        end_time: core.now,
        busy: core.busy_ns.iter().map(|&b| Nanos::from_nanos(b)).collect(),
        overhead: core
            .overhead_ns
            .iter()
            .map(|&b| Nanos::from_nanos(b))
            .collect(),
        completions: core.completions,
        timeline: core.timeline.as_ref().map(|t| t.series()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{ArrivalGen, Workload};

    /// A trivial c-FCFS policy used to exercise the engine itself.
    struct MiniFcfs {
        queue: std::collections::VecDeque<ReqId>,
    }

    impl SimPolicy for MiniFcfs {
        fn name(&self) -> String {
            "mini-fcfs".into()
        }
        fn handle(&mut self, ev: Event, core: &mut Core) {
            match ev {
                Event::Arrival(id) => {
                    if let Some(w) = core.idle_worker() {
                        core.run(w, id);
                    } else {
                        self.queue.push_back(id);
                    }
                }
                Event::Completed { worker, .. } => {
                    if let Some(next) = self.queue.pop_front() {
                        core.run(worker, next);
                    }
                }
                _ => unreachable!("mini-fcfs uses no slices or timers"),
            }
        }
    }

    fn run_mini(load: f64, workers: usize) -> SimOutput {
        let wl = Workload::high_bimodal();
        let dur = Nanos::from_millis(200);
        let gen = ArrivalGen::uniform(&wl, workers, load, dur, 42);
        let mut policy = MiniFcfs {
            queue: Default::default(),
        };
        simulate(&mut policy, gen, 2, dur, &SimConfig::new(workers))
    }

    #[test]
    fn low_load_has_near_zero_queueing() {
        let out = run_mini(0.05, 8);
        assert!(out.completions > 100);
        // At 5 % load the p50 slowdown must be ~1 (no queueing).
        assert!(
            out.summary.overall_slowdown.p50 < 1.01,
            "p50 slowdown = {}",
            out.summary.overall_slowdown.p50
        );
    }

    #[test]
    fn high_load_queues_more_than_low_load() {
        let lo = run_mini(0.2, 4);
        let hi = run_mini(0.9, 4);
        assert!(
            hi.summary.overall_slowdown.p999 > lo.summary.overall_slowdown.p999,
            "hi {} vs lo {}",
            hi.summary.overall_slowdown.p999,
            lo.summary.overall_slowdown.p999
        );
    }

    #[test]
    fn utilization_tracks_offered_load() {
        let out = run_mini(0.5, 8);
        let busy = out.mean_busy_cores();
        assert!(
            (busy - 4.0).abs() < 0.3,
            "expected ~4 busy cores, got {busy}"
        );
        assert_eq!(out.mean_overhead_cores(), 0.0);
    }

    #[test]
    fn slices_preempt_and_charge_overhead() {
        /// A policy that slices everything at 5 µs with 1 µs overhead.
        struct Slicer {
            queue: std::collections::VecDeque<ReqId>,
        }
        impl SimPolicy for Slicer {
            fn name(&self) -> String {
                "slicer".into()
            }
            fn handle(&mut self, ev: Event, core: &mut Core) {
                let q = Nanos::from_micros(5);
                let o = Nanos::from_micros(1);
                match ev {
                    Event::Arrival(id) => {
                        self.queue.push_back(id);
                    }
                    Event::Completed { .. } | Event::SliceExpired { .. } => {
                        if let Event::SliceExpired { req, .. } = ev {
                            self.queue.push_back(req);
                        }
                    }
                    Event::Timer(_) => {}
                }
                while let (Some(w), false) = (core.idle_worker(), self.queue.is_empty()) {
                    let id = self.queue.pop_front().unwrap();
                    core.run_slice(w, id, q, o);
                }
            }
        }
        let wl = Workload::high_bimodal();
        let dur = Nanos::from_millis(50);
        let gen = ArrivalGen::uniform(&wl, 4, 0.5, dur, 1);
        let mut p = Slicer {
            queue: Default::default(),
        };
        let out = simulate(&mut p, gen, 2, dur, &SimConfig::new(4));
        // Long requests (100 µs) need 20 slices ⇒ 19 preemptions each, so
        // overhead cores must be clearly positive.
        assert!(
            out.mean_overhead_cores() > 0.05,
            "{}",
            out.mean_overhead_cores()
        );
        assert!(out.completions > 0);
    }

    #[test]
    fn rtt_is_reporting_only() {
        let wl = Workload::high_bimodal();
        let dur = Nanos::from_millis(50);
        let mk = |rtt| {
            let gen = ArrivalGen::uniform(&wl, 4, 0.3, dur, 3);
            let mut p = MiniFcfs {
                queue: Default::default(),
            };
            simulate(
                &mut p,
                gen,
                2,
                dur,
                &SimConfig::new(4).with_rtt(Nanos::from_micros(rtt)),
            )
        };
        let without = mk(0);
        let with = mk(10);
        // Same seed ⇒ same slowdowns; latency shifted by exactly 10 µs.
        assert_eq!(
            without.summary.overall_slowdown.p999,
            with.summary.overall_slowdown.p999
        );
        assert_eq!(
            with.summary.per_type[0].latency_ns.p50,
            without.summary.per_type[0].latency_ns.p50 + 10_000.0
        );
    }

    #[test]
    fn timeline_is_produced_when_requested() {
        let wl = Workload::high_bimodal();
        let dur = Nanos::from_millis(100);
        let gen = ArrivalGen::uniform(&wl, 4, 0.3, dur, 5);
        let mut p = MiniFcfs {
            queue: Default::default(),
        };
        let mut cfg = SimConfig::new(4);
        cfg.timeline_bucket = Some(Nanos::from_millis(10));
        let out = simulate(&mut p, gen, 2, dur, &cfg);
        let tl = out.timeline.expect("timeline requested");
        assert!(tl.len() >= 9, "expected ~10 buckets, got {}", tl.len());
    }

    #[test]
    fn warmup_discards_early_arrivals() {
        let out = run_mini(0.3, 4);
        // Roughly 10 % of completions should have been discarded.
        let kept = out.summary.completions;
        let total = out.completions;
        let frac = kept as f64 / total as f64;
        assert!((frac - 0.9).abs() < 0.02, "kept fraction = {frac}");
    }
}
