//! Service-time distributions — re-exported from `persephone-core` so
//! existing `persephone_sim::dist` imports keep working. The
//! implementation moved to [`persephone_core::dist`] when the threaded
//! runtime's load generator and the scenario engine started sampling the
//! same distributions from the same seeded streams.

pub use persephone_core::dist::Dist;
