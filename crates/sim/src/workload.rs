//! Workload definitions and the open-loop Poisson arrival generator.
//!
//! The named constructors reproduce the paper's evaluation workloads:
//!
//! * [`Workload::high_bimodal`] — Table 3, 100× dispersion.
//! * [`Workload::extreme_bimodal`] — Table 3, 1000× dispersion.
//! * [`Workload::tpcc`] — Table 4, the five TPC-C transaction profiles.
//! * [`Workload::rocksdb`] — §5.4.4, 50 % GET (1.5 µs) / 50 % SCAN (635 µs).
//!
//! Arrivals follow an open-loop Poisson process, "modeling the behavior of
//! bursty production traffic" (paper §5.1).

use persephone_core::time::Nanos;
use persephone_core::types::TypeId;

use crate::dist::Dist;
use crate::rng::Rng;

/// One request type inside a workload mix.
#[derive(Clone, Debug, PartialEq)]
pub struct TypeMix {
    /// Display name ("SHORT", "Payment", ...).
    pub name: String,
    /// Fraction of the traffic this type represents, in `(0, 1]`.
    pub ratio: f64,
    /// Service-time distribution.
    pub service: Dist,
}

impl TypeMix {
    /// Creates a mix entry.
    pub fn new(name: impl Into<String>, ratio: f64, service: Dist) -> Self {
        TypeMix {
            name: name.into(),
            ratio,
            service,
        }
    }
}

/// A static workload: a set of typed request type mixes.
#[derive(Clone, Debug, PartialEq)]
pub struct Workload {
    /// Display name used in figures.
    pub name: String,
    /// The request-type mixes; ratios must sum to ≈1.
    pub types: Vec<TypeMix>,
}

impl Workload {
    /// Creates a workload, validating that ratios sum to 1 (±1 %).
    ///
    /// # Panics
    ///
    /// Panics if `types` is empty or the ratios do not sum to ≈1.
    pub fn new(name: impl Into<String>, types: Vec<TypeMix>) -> Self {
        assert!(!types.is_empty(), "workload needs at least one type");
        let total: f64 = types.iter().map(|t| t.ratio).sum();
        assert!(
            (total - 1.0).abs() < 0.01,
            "type ratios must sum to 1, got {total}"
        );
        Workload {
            name: name.into(),
            types,
        }
    }

    /// Table 3 *High Bimodal*: 50 % × 1 µs, 50 % × 100 µs (100× dispersion).
    pub fn high_bimodal() -> Workload {
        Workload::new(
            "HighBimodal",
            vec![
                TypeMix::new("SHORT", 0.5, Dist::const_micros(1.0)),
                TypeMix::new("LONG", 0.5, Dist::const_micros(100.0)),
            ],
        )
    }

    /// Table 3 *Extreme Bimodal*: 99.5 % × 0.5 µs, 0.5 % × 500 µs
    /// (1000× dispersion).
    pub fn extreme_bimodal() -> Workload {
        Workload::new(
            "ExtremeBimodal",
            vec![
                TypeMix::new("SHORT", 0.995, Dist::const_micros(0.5)),
                TypeMix::new("LONG", 0.005, Dist::const_micros(500.0)),
            ],
        )
    }

    /// Table 4 *TPC-C*: the five transaction profiles run as a synthetic
    /// workload (Payment 5.7 µs/44 %, OrderStatus 6 µs/4 %, NewOrder
    /// 20 µs/44 %, Delivery 88 µs/4 %, StockLevel 100 µs/4 %).
    pub fn tpcc() -> Workload {
        Workload::new(
            "TPC-C",
            vec![
                TypeMix::new("Payment", 0.44, Dist::const_micros(5.7)),
                TypeMix::new("OrderStatus", 0.04, Dist::const_micros(6.0)),
                TypeMix::new("NewOrder", 0.44, Dist::const_micros(20.0)),
                TypeMix::new("Delivery", 0.04, Dist::const_micros(88.0)),
                TypeMix::new("StockLevel", 0.04, Dist::const_micros(100.0)),
            ],
        )
    }

    /// §5.4.4 *RocksDB*: 50 % GET × 1.5 µs, 50 % SCAN × 635 µs
    /// (420× dispersion).
    pub fn rocksdb() -> Workload {
        Workload::new(
            "RocksDB",
            vec![
                TypeMix::new("GET", 0.5, Dist::const_micros(1.5)),
                TypeMix::new("SCAN", 0.5, Dist::const_micros(635.0)),
            ],
        )
    }

    /// Number of request types.
    pub fn num_types(&self) -> usize {
        self.types.len()
    }

    /// Mean service time across the mix: `Σ S_i·R_i`.
    pub fn mean_service(&self) -> Nanos {
        let ns: f64 = self
            .types
            .iter()
            .map(|t| t.service.mean().as_nanos() as f64 * t.ratio)
            .sum();
        Nanos::from_nanos(ns.round() as u64)
    }

    /// The theoretical peak throughput of `workers` cores, requests/sec.
    pub fn peak_rate(&self, workers: usize) -> f64 {
        workers as f64 / self.mean_service().as_secs_f64()
    }

    /// Dispersion between the slowest and fastest type means.
    pub fn dispersion(&self) -> f64 {
        let means: Vec<f64> = self
            .types
            .iter()
            .map(|t| t.service.mean().as_nanos() as f64)
            .collect();
        let max = means.iter().cloned().fold(f64::MIN, f64::max);
        let min = means.iter().cloned().fold(f64::MAX, f64::min);
        if min <= 0.0 {
            0.0
        } else {
            max / min
        }
    }

    /// Per-type mean-service hints for seeding a DARC engine.
    pub fn hints(&self) -> Vec<Option<Nanos>> {
        self.types.iter().map(|t| Some(t.service.mean())).collect()
    }

    /// Per-type occurrence ratios.
    pub fn ratios(&self) -> Vec<f64> {
        self.types.iter().map(|t| t.ratio).collect()
    }
}

/// A phase of a time-varying workload (paper §5.5, Figure 7).
#[derive(Clone, Debug)]
pub struct Phase {
    /// How long this phase lasts.
    pub duration: Nanos,
    /// The mix during the phase. All phases must declare the same number
    /// of types (types may have ratio changes, including dropping to 0).
    pub workload: Workload,
    /// Offered load as a fraction of this phase's peak rate.
    pub load: f64,
}

/// A scripted multi-phase workload.
#[derive(Clone, Debug)]
pub struct PhasedWorkload {
    /// The phases, played in order.
    pub phases: Vec<Phase>,
}

impl PhasedWorkload {
    /// Creates a phased workload.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or phases disagree on the type count.
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty());
        let n = phases[0].workload.num_types();
        assert!(
            phases.iter().all(|p| p.workload.num_types() == n),
            "all phases must declare the same types"
        );
        PhasedWorkload { phases }
    }

    /// The paper's §5.5 scenario: two types A and B over four 5-second
    /// phases at 80 % utilization —
    /// (1) A slow (500 µs) / B fast (0.5 µs) at 50/50;
    /// (2) service times swap (misclassification stress);
    /// (3) ratios shift to 99.5 % A / 0.5 % B;
    /// (4) only A requests remain.
    pub fn paper_fig7() -> PhasedWorkload {
        let p = |a_us: f64, a_ratio: f64, b_us: f64, b_ratio: f64| Workload {
            name: "AB".into(),
            types: vec![
                TypeMix::new("A", a_ratio, Dist::const_micros(a_us)),
                TypeMix::new("B", b_ratio, Dist::const_micros(b_us)),
            ],
        };
        let five = Nanos::from_secs(5);
        PhasedWorkload::new(vec![
            Phase {
                duration: five,
                workload: p(500.0, 0.5, 0.5, 0.5),
                load: 0.8,
            },
            Phase {
                duration: five,
                workload: p(0.5, 0.5, 500.0, 0.5),
                load: 0.8,
            },
            Phase {
                duration: five,
                workload: p(0.5, 0.995, 500.0, 0.005),
                load: 0.8,
            },
            Phase {
                duration: five,
                workload: p(0.5, 1.0, 500.0, 0.0),
                load: 0.8,
            },
        ])
    }

    /// Total scripted duration.
    pub fn total_duration(&self) -> Nanos {
        self.phases.iter().map(|p| p.duration).sum()
    }

    /// Number of request types (identical across phases).
    pub fn num_types(&self) -> usize {
        self.phases[0].workload.num_types()
    }
}

/// A two-state Markov-modulated burst model layered over the Poisson
/// process: the generator alternates between a *calm* and a *burst*
/// state with exponentially distributed dwell times; in the burst state
/// the arrival rate is multiplied by `amplification`. The long-run mean
/// rate is kept equal to the configured rate by slowing the calm state
/// accordingly, so load sweeps remain comparable.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstModel {
    /// Mean dwell time in the calm state.
    pub calm_mean: Nanos,
    /// Mean dwell time in the burst state.
    pub burst_mean: Nanos,
    /// Rate multiplier while bursting (> 1).
    pub amplification: f64,
}

impl BurstModel {
    /// The calm-state rate multiplier that keeps the long-run mean rate
    /// at 1× given the dwell-time fractions.
    fn calm_multiplier(&self) -> f64 {
        let c = self.calm_mean.as_nanos() as f64;
        let b = self.burst_mean.as_nanos() as f64;
        let frac_burst = b / (b + c);
        let m = (1.0 - self.amplification * frac_burst) / (1.0 - frac_burst);
        m.max(0.01)
    }
}

/// An open-loop Poisson arrival sampler over a (possibly phased) workload.
#[derive(Clone, Debug)]
pub struct ArrivalGen {
    phases: Vec<Phase>,
    /// Precomputed mean interarrival (ns) per phase.
    interarrival_ns: Vec<f64>,
    /// Phase end times (absolute).
    phase_ends: Vec<Nanos>,
    current: usize,
    rng_arrival: Rng,
    rng_type: Rng,
    rng_service: Rng,
    next_at: Nanos,
    workers: usize,
    /// Optional MMPP burst modulation.
    burst: Option<BurstModel>,
    bursting: bool,
    state_until: Nanos,
}

/// One generated arrival.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Arrival {
    /// Absolute arrival time.
    pub at: Nanos,
    /// True request type.
    pub ty: TypeId,
    /// Sampled service demand.
    pub service: Nanos,
}

impl ArrivalGen {
    /// Creates a generator for a single-phase workload at `load` × peak.
    pub fn uniform(
        workload: &Workload,
        workers: usize,
        load: f64,
        duration: Nanos,
        seed: u64,
    ) -> Self {
        ArrivalGen::phased(
            &PhasedWorkload::new(vec![Phase {
                duration,
                workload: workload.clone(),
                load,
            }]),
            workers,
            seed,
        )
    }

    /// Creates a generator for a phased workload.
    ///
    /// # Panics
    ///
    /// Panics if any phase's load is not positive.
    pub fn phased(pw: &PhasedWorkload, workers: usize, seed: u64) -> Self {
        let mut root = Rng::new(seed);
        let mut ends = Vec::new();
        let mut acc = Nanos::ZERO;
        let mut inter = Vec::new();
        for p in &pw.phases {
            assert!(p.load > 0.0, "phase load must be positive");
            acc += p.duration;
            ends.push(acc);
            let rate = p.workload.peak_rate(workers) * p.load; // req/s
            inter.push(1e9 / rate);
        }
        let mut gen = ArrivalGen {
            phases: pw.phases.clone(),
            interarrival_ns: inter,
            phase_ends: ends,
            current: 0,
            rng_arrival: root.fork(),
            rng_type: root.fork(),
            rng_service: root.fork(),
            next_at: Nanos::ZERO,
            workers,
            burst: None,
            bursting: false,
            state_until: Nanos::ZERO,
        };
        // First arrival after one sampled gap from t = 0.
        let gap = gen.rng_arrival.next_exp(gen.interarrival_ns[0]);
        gen.next_at = Nanos::from_nanos(gap as u64);
        gen
    }

    /// Number of workers the load was scaled to.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Enables MMPP burst modulation (paper §5.1: the client "models the
    /// behavior of bursty production traffic"; DARC's stealing exists to
    /// absorb such bursts, §3).
    ///
    /// # Panics
    ///
    /// Panics if the model is infeasible (amplification ≤ 1, or so large
    /// that the calm state would need a negative rate).
    pub fn with_bursts(mut self, model: BurstModel) -> Self {
        assert!(model.amplification > 1.0, "amplification must exceed 1");
        let b = model.burst_mean.as_nanos() as f64;
        let c = model.calm_mean.as_nanos() as f64;
        assert!(b > 0.0 && c > 0.0, "dwell times must be positive");
        assert!(
            model.amplification * b / (b + c) < 1.0,
            "burst state would exceed the total rate budget"
        );
        self.burst = Some(model);
        self.bursting = false;
        self.state_until = Nanos::ZERO;
        self
    }

    /// Current rate multiplier under the burst model (1.0 when disabled).
    fn rate_multiplier(&mut self, now: Nanos) -> f64 {
        let Some(model) = self.burst else { return 1.0 };
        while now >= self.state_until {
            self.bursting = !self.bursting;
            let dwell = if self.bursting {
                model.burst_mean
            } else {
                model.calm_mean
            };
            let d = self.rng_arrival.next_exp(dwell.as_nanos() as f64);
            self.state_until = self
                .state_until
                .saturating_add(Nanos::from_nanos(d.max(1.0) as u64));
        }
        if self.bursting {
            model.amplification
        } else {
            model.calm_multiplier()
        }
    }

    /// Draws the next arrival, or `None` once the script has ended.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Arrival> {
        // Advance phases until the pending arrival time falls inside one.
        while self.next_at >= self.phase_ends[self.current] {
            if self.current + 1 >= self.phases.len() {
                return None;
            }
            self.current += 1;
        }
        let phase = &self.phases[self.current];
        let at = self.next_at;
        // Sample a type with positive ratio (ratios may be 0 in a phase).
        let weights: Vec<f64> = phase.workload.types.iter().map(|t| t.ratio).collect();
        let ti = self.rng_type.pick_weighted(&weights);
        let service = phase.workload.types[ti]
            .service
            .sample(&mut self.rng_service);
        // Schedule the next arrival (burst modulation scales the rate).
        let mult = self.rate_multiplier(at);
        let gap = self
            .rng_arrival
            .next_exp(self.interarrival_ns[self.current] / mult);
        self.next_at = at.saturating_add(Nanos::from_nanos(gap.max(1.0) as u64));
        Some(Arrival {
            at,
            ty: TypeId::new(ti as u32),
            service,
        })
    }
}

/// `ArrivalGen` is a genuine iterator: the scenario engine materializes
/// traces with `collect()`, and [`crate::engine::simulate`] accepts any
/// arrival source.
impl Iterator for ArrivalGen {
    type Item = Arrival;

    fn next(&mut self) -> Option<Arrival> {
        ArrivalGen::next(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_workloads_match_paper() {
        let hb = Workload::high_bimodal();
        assert_eq!(hb.mean_service(), Nanos::from_nanos(50_500));
        assert_eq!(hb.dispersion(), 100.0);

        let eb = Workload::extreme_bimodal();
        assert_eq!(eb.mean_service(), Nanos::from_nanos(2_998)); // 0.4975+2.5 µs rounded
        assert_eq!(eb.dispersion(), 1000.0);
    }

    #[test]
    fn table4_tpcc_matches_paper() {
        let t = Workload::tpcc();
        assert_eq!(t.num_types(), 5);
        // Mean: 5.7·.44 + 6·.04 + 20·.44 + 88·.04 + 100·.04 = 19.068 µs.
        assert_eq!(t.mean_service(), Nanos::from_nanos(19_068));
        assert!((t.dispersion() - 100.0 / 5.7).abs() < 1e-9);
        assert!((t.ratios().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rocksdb_dispersion_is_420x() {
        let r = Workload::rocksdb();
        assert!((r.dispersion() - 635.0 / 1.5).abs() < 1e-9);
        assert_eq!(r.mean_service(), Nanos::from_nanos(318_250));
    }

    #[test]
    fn peak_rate_matches_hand_math() {
        // Extreme Bimodal on 16 workers ⇒ ~5.34 Mrps (paper §2: 5.3 Mrps).
        let eb = Workload::extreme_bimodal();
        let peak = eb.peak_rate(16);
        assert!((peak / 1e6 - 5.34).abs() < 0.01, "peak = {peak}");
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_ratios_rejected() {
        Workload::new("bad", vec![TypeMix::new("x", 0.4, Dist::const_micros(1.0))]);
    }

    #[test]
    fn arrivals_are_poisson_at_requested_rate() {
        let wl = Workload::extreme_bimodal();
        let mut gen = ArrivalGen::uniform(&wl, 16, 0.5, Nanos::from_millis(200), 7);
        let mut n = 0u64;
        let mut last = Nanos::ZERO;
        let mut shorts = 0u64;
        while let Some(a) = gen.next() {
            assert!(a.at >= last, "arrivals must be time-ordered");
            last = a.at;
            n += 1;
            if a.ty == TypeId::new(0) {
                shorts += 1;
            }
        }
        // Expected: 0.5 × 5.34 Mrps × 0.2 s ≈ 534k arrivals (±2 %).
        let expect = 0.5 * wl.peak_rate(16) * 0.2;
        assert!(
            (n as f64 - expect).abs() / expect < 0.02,
            "n = {n}, expect = {expect}"
        );
        let short_ratio = shorts as f64 / n as f64;
        assert!((short_ratio - 0.995).abs() < 0.002);
    }

    #[test]
    fn phased_generator_switches_mixes() {
        let pw = PhasedWorkload::paper_fig7();
        assert_eq!(pw.total_duration(), Nanos::from_secs(20));
        assert_eq!(pw.num_types(), 2);
        let mut gen = ArrivalGen::phased(&pw, 14, 11);
        let mut before = (0u64, 0u64); // (A, B) in phase 4 window
        let mut phase4_b = 0u64;
        let mut phase4_total = 0u64;
        while let Some(a) = gen.next() {
            if a.at >= Nanos::from_secs(15) {
                phase4_total += 1;
                if a.ty == TypeId::new(1) {
                    phase4_b += 1;
                }
            } else if a.at < Nanos::from_secs(5) {
                if a.ty == TypeId::new(0) {
                    before.0 += 1;
                } else {
                    before.1 += 1;
                }
            }
        }
        assert_eq!(phase4_b, 0, "phase 4 is A-only");
        assert!(phase4_total > 0);
        // Phase 1 is 50/50.
        let ratio = before.0 as f64 / (before.0 + before.1) as f64;
        assert!((ratio - 0.5).abs() < 0.01, "phase-1 A ratio = {ratio}");
    }

    #[test]
    fn fig7_phase_service_times_follow_the_script() {
        let pw = PhasedWorkload::paper_fig7();
        // Phase 1: A slow, B fast; phase 2 swaps.
        let p1 = &pw.phases[0].workload;
        assert_eq!(p1.types[0].service.mean(), Nanos::from_nanos(500_000));
        assert_eq!(p1.types[1].service.mean(), Nanos::from_nanos(500));
        let p2 = &pw.phases[1].workload;
        assert_eq!(p2.types[0].service.mean(), Nanos::from_nanos(500));
        assert_eq!(p2.types[1].service.mean(), Nanos::from_nanos(500_000));
        // Phase 3 matches Extreme Bimodal ratios (A is the 99.5 % type).
        assert_eq!(pw.phases[2].workload.types[0].ratio, 0.995);
    }

    #[test]
    fn bursty_arrivals_keep_the_mean_rate() {
        let wl = Workload::extreme_bimodal();
        let model = BurstModel {
            calm_mean: Nanos::from_millis(5),
            burst_mean: Nanos::from_millis(1),
            amplification: 3.0,
        };
        let count = |burst: Option<BurstModel>| {
            let mut gen = ArrivalGen::uniform(&wl, 8, 0.5, Nanos::from_millis(400), 7);
            if let Some(m) = burst {
                gen = gen.with_bursts(m);
            }
            let mut n = 0u64;
            while gen.next().is_some() {
                n += 1;
            }
            n as f64
        };
        let plain = count(None);
        let bursty = count(Some(model));
        assert!(
            (bursty / plain - 1.0).abs() < 0.05,
            "burst modulation must preserve the mean rate: {bursty} vs {plain}"
        );
    }

    #[test]
    fn bursts_increase_short_horizon_variance() {
        // Count arrivals in 1 ms windows: the MMPP's window-count variance
        // must exceed plain Poisson's (index of dispersion > 1).
        let wl = Workload::extreme_bimodal();
        let dur = Nanos::from_millis(400);
        let windows = |bursty: bool| -> f64 {
            let mut gen = ArrivalGen::uniform(&wl, 8, 0.5, dur, 11);
            if bursty {
                gen = gen.with_bursts(BurstModel {
                    calm_mean: Nanos::from_millis(5),
                    burst_mean: Nanos::from_millis(1),
                    amplification: 3.0,
                });
            }
            let mut counts = vec![0f64; 400];
            while let Some(a) = gen.next() {
                let w = (a.at.as_nanos() / 1_000_000) as usize;
                if w < counts.len() {
                    counts[w] += 1.0;
                }
            }
            let mean = counts.iter().sum::<f64>() / counts.len() as f64;
            counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / counts.len() as f64 / mean
        };
        let plain_iod = windows(false);
        let bursty_iod = windows(true);
        assert!(plain_iod < 2.0, "Poisson IoD ≈ 1, got {plain_iod}");
        assert!(
            bursty_iod > plain_iod * 2.0,
            "bursty IoD {bursty_iod} must dominate Poisson {plain_iod}"
        );
    }

    #[test]
    #[should_panic(expected = "amplification must exceed 1")]
    fn burst_model_validates_amplification() {
        let wl = Workload::high_bimodal();
        let _ =
            ArrivalGen::uniform(&wl, 2, 0.5, Nanos::from_millis(10), 1).with_bursts(BurstModel {
                calm_mean: Nanos::from_millis(1),
                burst_mean: Nanos::from_millis(1),
                amplification: 1.0,
            });
    }

    #[test]
    fn hints_expose_type_means() {
        let hints = Workload::high_bimodal().hints();
        assert_eq!(hints[0], Some(Nanos::from_micros(1)));
        assert_eq!(hints[1], Some(Nanos::from_micros(100)));
    }
}
