//! Deterministic pseudo-random numbers — re-exported from
//! `persephone-core` so existing `persephone_sim::rng` imports keep
//! working. The implementation moved to [`persephone_core::rng`] when the
//! threaded runtime's load generator and the scenario engine started
//! sharing the same seeded streams.

pub use persephone_core::rng::Rng;
