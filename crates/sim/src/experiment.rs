//! Experiment harness: load sweeps, SLO capacity search, system models.
//!
//! The paper's headline comparisons are of the form "policy X sustains
//! N× more load than policy Y under SLO Z". This module runs load sweeps
//! and extracts those capacities, and defines [`SystemSpec`] presets for
//! the three systems compared in §5 (Shenango, Shinjuku, Perséphone).

use persephone_core::policy::{Policy, TimeSharingParams, TsDiscipline};
use persephone_core::time::Nanos;

use crate::engine::{simulate, SimConfig, SimOutput, SimPolicy};
use crate::metrics::RunSummary;
use crate::policies;
use crate::workload::{ArrivalGen, Workload};

/// A service-level objective over a run summary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Slo {
    /// p99.9 slowdown across all requests must not exceed the bound.
    OverallSlowdown(f64),
    /// p99.9 slowdown of *every* type must not exceed the bound
    /// (Figure 1's "10× for each request type").
    PerTypeSlowdown(f64),
    /// p99.9 latency of one type must not exceed the bound
    /// (Figure 3's "SLO of 20 µs for short requests").
    TypeLatency {
        /// The constrained type's index.
        ty: usize,
        /// The latency bound.
        bound: Nanos,
    },
}

impl Slo {
    /// Whether `summary` satisfies the SLO.
    pub fn met(&self, summary: &RunSummary) -> bool {
        match *self {
            Slo::OverallSlowdown(b) => summary.overall_slowdown.p999 <= b,
            Slo::PerTypeSlowdown(b) => summary
                .per_type
                .iter()
                .filter(|t| t.slowdown.count > 0)
                .all(|t| t.slowdown.p999 <= b),
            Slo::TypeLatency { ty, bound } => {
                summary.per_type[ty].latency_ns.p999 <= bound.as_nanos() as f64
            }
        }
    }
}

/// One swept load point.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// Offered load as a fraction of the theoretical peak.
    pub load: f64,
    /// Offered rate, requests per second.
    pub offered_rps: f64,
    /// `None` when the point was skipped because the system's documented
    /// sustainable-load ceiling was exceeded (it drops/crashes there).
    pub output: Option<SimOutput>,
}

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// The workload under test.
    pub workload: Workload,
    /// Worker cores.
    pub workers: usize,
    /// Load fractions to sweep (of theoretical peak).
    pub loads: Vec<f64>,
    /// Simulated arrival duration per point.
    pub duration: Nanos,
    /// Experiment seed (each point derives its own).
    pub seed: u64,
    /// Reporting-only network RTT.
    pub rtt: Nanos,
    /// DARC profiling-window size (completions).
    pub darc_min_samples: u64,
    /// Per-queue capacity for every policy (`0` = unbounded). Real
    /// kernel-bypass systems have finite buffers and shed load at
    /// saturation; DARC's typed-queue flow control is such a bound.
    pub queue_capacity: usize,
}

impl SweepConfig {
    /// A sweep over `loads` with sensible defaults (no network RTT,
    /// 20k-sample DARC windows).
    pub fn new(workload: Workload, workers: usize, loads: Vec<f64>, duration: Nanos) -> Self {
        SweepConfig {
            workload,
            workers,
            loads,
            duration,
            seed: 0xBEEF,
            rtt: Nanos::ZERO,
            darc_min_samples: 20_000,
            queue_capacity: 0,
        }
    }

    /// Sets the per-queue capacity for every policy.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Evenly spaced loads from `lo` to `hi` (inclusive).
    pub fn load_steps(lo: f64, hi: f64, n: usize) -> Vec<f64> {
        assert!(n >= 2 && hi > lo);
        (0..n)
            .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
            .collect()
    }
}

/// A modeled system: a policy plus deployment parameters (paper §5.1).
#[derive(Clone, Debug)]
pub struct SystemSpec {
    /// Display name ("Shenango", "Shinjuku", "Perséphone").
    pub name: String,
    /// The scheduling policy the system implements.
    pub policy: Policy,
    /// Documented sustainable-load ceiling, as a fraction of peak; beyond
    /// it the real system drops packets and eventually crashes (paper
    /// §5.4: 75 % for High Bimodal / RocksDB, 55 % for Extreme Bimodal,
    /// 85 % for TPC-C under Shinjuku).
    pub max_load: Option<f64>,
}

impl SystemSpec {
    /// Shenango running c-FCFS (work stealing enabled).
    pub fn shenango_cfcfs() -> SystemSpec {
        SystemSpec {
            name: "Shenango".into(),
            policy: Policy::CFcfs,
            max_load: None,
        }
    }

    /// Shenango with work stealing disabled (d-FCFS).
    pub fn shenango_dfcfs() -> SystemSpec {
        SystemSpec {
            name: "Shenango-dFCFS".into(),
            policy: Policy::DFcfs,
            max_load: None,
        }
    }

    /// Shinjuku with the given quantum/discipline and documented ceiling.
    pub fn shinjuku(quantum_us: u64, discipline: TsDiscipline, max_load: f64) -> SystemSpec {
        SystemSpec {
            name: "Shinjuku".into(),
            policy: Policy::TimeSharing(TimeSharingParams {
                quantum: Nanos::from_micros(quantum_us),
                overhead: Nanos::from_micros(1),
                propagation: Nanos::ZERO,
                discipline,
            }),
            max_load: Some(max_load),
        }
    }

    /// Perséphone running DARC.
    pub fn persephone() -> SystemSpec {
        SystemSpec {
            name: "Persephone".into(),
            policy: Policy::Darc,
            max_load: None,
        }
    }
}

/// Runs one policy at one load point.
pub fn run_point(policy: &Policy, cfg: &SweepConfig, load: f64, seed: u64) -> SimOutput {
    let mut p = policies::build(
        policy,
        &cfg.workload,
        cfg.workers,
        cfg.darc_min_samples,
        cfg.queue_capacity,
    );
    run_point_with(p.as_mut(), cfg, load, seed)
}

/// Runs a pre-built policy object at one load point.
pub fn run_point_with(
    policy: &mut dyn SimPolicy,
    cfg: &SweepConfig,
    load: f64,
    seed: u64,
) -> SimOutput {
    let gen = ArrivalGen::uniform(&cfg.workload, cfg.workers, load, cfg.duration, seed);
    let sim = SimConfig {
        workers: cfg.workers,
        warmup_fraction: 0.1,
        rtt: cfg.rtt,
        timeline_bucket: None,
    };
    simulate(policy, gen, cfg.workload.num_types(), cfg.duration, &sim)
}

/// Sweeps a policy across the configured loads.
pub fn sweep(policy: &Policy, cfg: &SweepConfig) -> Vec<PointResult> {
    sweep_system(
        &SystemSpec {
            name: policy.name(),
            policy: policy.clone(),
            max_load: None,
        },
        cfg,
    )
}

/// Sweeps a system across the configured loads, honoring its ceiling.
pub fn sweep_system(system: &SystemSpec, cfg: &SweepConfig) -> Vec<PointResult> {
    let peak = cfg.workload.peak_rate(cfg.workers);
    cfg.loads
        .iter()
        .enumerate()
        .map(|(i, &load)| {
            let output = match system.max_load {
                Some(ceiling) if load > ceiling + 1e-9 => None,
                _ => Some(run_point(
                    &system.policy,
                    cfg,
                    load,
                    cfg.seed.wrapping_add(i as u64),
                )),
            };
            PointResult {
                load,
                offered_rps: peak * load,
                output,
            }
        })
        .collect()
}

/// The highest swept load whose point meets the SLO (`None` if none do).
///
/// Saturated/skipped points count as violations, matching the paper's
/// treatment of Shinjuku beyond its sustainable load.
pub fn capacity_at_slo(points: &[PointResult], slo: Slo) -> Option<f64> {
    points
        .iter()
        .filter(|p| {
            p.output
                .as_ref()
                .map(|o| slo.met(&o.summary))
                .unwrap_or(false)
        })
        .map(|p| p.load)
        .fold(None, |acc, l| Some(acc.map_or(l, |a: f64| a.max(l))))
}

/// Capacity in requests/second rather than load fraction.
pub fn capacity_rps_at_slo(points: &[PointResult], slo: Slo) -> Option<f64> {
    points
        .iter()
        .filter(|p| {
            p.output
                .as_ref()
                .map(|o| slo.met(&o.summary))
                .unwrap_or(false)
        })
        .map(|p| p.offered_rps)
        .fold(None, |acc, l| Some(acc.map_or(l, |a: f64| a.max(l))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sweep(policy: Policy) -> (Vec<PointResult>, SweepConfig) {
        let cfg = SweepConfig {
            darc_min_samples: 3_000,
            ..SweepConfig::new(
                Workload::extreme_bimodal(),
                8,
                vec![0.2, 0.5, 0.8],
                Nanos::from_millis(60),
            )
        };
        (sweep(&policy, &cfg), cfg)
    }

    #[test]
    fn load_steps_are_inclusive_and_even() {
        let steps = SweepConfig::load_steps(0.1, 0.9, 5);
        assert_eq!(steps.len(), 5);
        assert!((steps[0] - 0.1).abs() < 1e-12);
        assert!((steps[4] - 0.9).abs() < 1e-12);
        assert!((steps[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sweep_produces_monotone_offered_rates() {
        let (points, cfg) = small_sweep(Policy::CFcfs);
        assert_eq!(points.len(), 3);
        let peak = cfg.workload.peak_rate(8);
        for p in &points {
            assert!((p.offered_rps - peak * p.load).abs() < 1.0);
            assert!(p.output.is_some());
        }
    }

    #[test]
    fn darc_capacity_exceeds_cfcfs_on_extreme_bimodal() {
        let (darc, _) = small_sweep(Policy::Darc);
        let (cfcfs, _) = small_sweep(Policy::CFcfs);
        let slo = Slo::PerTypeSlowdown(10.0);
        let cap_darc = capacity_at_slo(&darc, slo).unwrap_or(0.0);
        let cap_cfcfs = capacity_at_slo(&cfcfs, slo).unwrap_or(0.0);
        assert!(
            cap_darc > cap_cfcfs,
            "DARC {cap_darc} vs c-FCFS {cap_cfcfs}"
        );
    }

    #[test]
    fn ceiling_skips_points() {
        let sys = SystemSpec::shinjuku(5, TsDiscipline::SingleQueue, 0.55);
        let cfg = SweepConfig::new(
            Workload::extreme_bimodal(),
            8,
            vec![0.3, 0.5, 0.8],
            Nanos::from_millis(30),
        );
        let points = sweep_system(&sys, &cfg);
        assert!(points[0].output.is_some());
        assert!(points[1].output.is_some());
        assert!(points[2].output.is_none(), "beyond the ceiling");
        // Skipped points can never satisfy an SLO.
        let cap = capacity_at_slo(&points, Slo::OverallSlowdown(1e12));
        assert_eq!(cap, Some(0.5));
    }

    #[test]
    fn slo_variants_evaluate_correctly() {
        let (points, _) = small_sweep(Policy::CFcfs);
        let out = points[0].output.as_ref().unwrap();
        // A absurdly lax SLO is met, an impossible one is not.
        assert!(Slo::OverallSlowdown(f64::INFINITY).met(&out.summary));
        assert!(!Slo::OverallSlowdown(0.0).met(&out.summary));
        assert!(Slo::TypeLatency {
            ty: 0,
            bound: Nanos::from_secs(100)
        }
        .met(&out.summary));
        assert!(!Slo::TypeLatency {
            ty: 0,
            bound: Nanos::from_nanos(1)
        }
        .met(&out.summary));
    }

    #[test]
    fn capacity_rps_scales_with_load() {
        let (points, cfg) = small_sweep(Policy::CFcfs);
        let slo = Slo::OverallSlowdown(f64::INFINITY);
        let rps = capacity_rps_at_slo(&points, slo).unwrap();
        let peak = cfg.workload.peak_rate(8);
        assert!((rps - 0.8 * peak).abs() < 1.0);
    }
}
