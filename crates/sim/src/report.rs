//! CSV and markdown emission for the figure-regeneration binaries.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A rectangular table with a header row.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column names.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "ragged table row");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (RFC-4180-style quoting for commas and quotes).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| quote(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Renders as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let body = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join(" | ");
            format!("| {body} |")
        };
        let mut out = String::new();
        let _ = writeln!(out, "{}", fmt_row(&self.header));
        let sep = widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join(" | ");
        let _ = writeln!(out, "| {sep} |");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Formats a nanosecond value as microseconds with 2 decimals.
pub fn us(ns: f64) -> String {
    format!("{:.2}", ns / 1_000.0)
}

/// Formats a ratio/slowdown with 2 decimals.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a rate as thousands of requests per second.
pub fn krps(rps: f64) -> String {
    format!("{:.1}", rps / 1_000.0)
}

/// Formats a rate as millions of requests per second.
pub fn mrps(rps: f64) -> String {
    format!("{:.2}", rps / 1_000_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trips_simple_cells() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push(vec!["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_quotes_commas_and_quotes() {
        let mut t = Table::new(vec!["x"]);
        t.push(vec!["hello, world"]);
        t.push(vec!["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"hello, world\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn markdown_is_aligned() {
        let mut t = Table::new(vec!["name", "v"]);
        t.push(vec!["longish", "1"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| name    | v |"));
        assert!(md.contains("| ------- | - |"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push(vec!["only-one"]);
    }

    #[test]
    fn unit_formatters() {
        assert_eq!(us(12_345.0), "12.35");
        assert_eq!(ratio(2.46913), "2.47");
        assert_eq!(krps(260_000.0), "260.0");
        assert_eq!(mrps(5_120_000.0), "5.12");
    }

    #[test]
    fn write_csv_creates_directories() {
        let dir = std::env::temp_dir().join("persephone_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("sub").join("t.csv");
        let mut t = Table::new(vec!["a"]);
        t.push(vec!["1"]);
        t.write_csv(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
