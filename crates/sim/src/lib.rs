//! # persephone-sim — discrete-event simulator for µs-scale RPC scheduling
//!
//! The evaluation substrate for the Perséphone reproduction. It simulates
//! a multicore server fed by an open-loop Poisson client and compares
//! scheduling policies (d-FCFS, c-FCFS, FP, SJF, Shinjuku-style time
//! sharing, and DARC driving the real `persephone-core` engine) on the
//! paper's workloads (High/Extreme Bimodal, TPC-C, RocksDB).
//!
//! ## Quickstart
//!
//! ```
//! use persephone_core::policy::Policy;
//! use persephone_core::time::Nanos;
//! use persephone_sim::experiment::{run_point, SweepConfig};
//! use persephone_sim::workload::Workload;
//!
//! let cfg = SweepConfig::new(
//!     Workload::extreme_bimodal(),
//!     8,
//!     vec![0.8],
//!     Nanos::from_millis(20),
//! );
//! let out = run_point(&Policy::Darc, &cfg, 0.8, 7);
//! assert!(out.completions > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod engine;
pub mod experiment;
pub mod hist;
pub mod metrics;
pub mod policies;
pub mod report;
pub mod rng;
pub mod workload;

pub use engine::{simulate, Core, Event, Req, ReqId, SimConfig, SimOutput, SimPolicy};
pub use experiment::{capacity_at_slo, sweep, sweep_system, Slo, SweepConfig, SystemSpec};
pub use metrics::{Percentiles, Recorder, RunSummary};
pub use workload::{ArrivalGen, PhasedWorkload, Workload};
