//! Application worker loop (paper §4.3.4).
//!
//! Each worker spins on its downstream SPSC ring. For every request it:
//! dereferences the buffer, runs the application handler (which formats
//! the response payload in place), rewrites the wire header into a
//! response, transmits on its own NIC context, and signals completion to
//! the dispatcher with the measured service time.

use std::sync::Arc;
use std::time::{Duration, Instant};

use persephone_core::time::Nanos;
use persephone_net::nic::NetContext;
use persephone_net::spsc;
use persephone_net::wire;
use persephone_telemetry::Telemetry;

use crate::fault::StallFault;
use crate::handler::RequestHandler;
use crate::messages::{Completion, WorkMsg};

/// Retry budget for a worker's response transmission. With the
/// spin/yield/sleep backoff ladder in
/// [`persephone_net::nic::NetContext::send_with_retry`], exhausting the
/// budget against a dead client takes tens of milliseconds of mostly
/// idle time — bounded, and off the core the moment the spin tier ends.
const TX_RETRY_ATTEMPTS: usize = 2_048;

/// Consecutive unproductive loop iterations before an `idle_backoff`
/// thread parks instead of yielding. The yield-spin phase keeps the
/// common case (work arrives within microseconds) park-free; only a
/// genuinely idle thread pays the wake-up latency.
pub(crate) const IDLE_SPINS_BEFORE_PARK: u32 = 64;

/// Final report returned when a worker terminates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Requests handled.
    pub handled: u64,
    /// Total busy time across all requests.
    pub busy: Nanos,
    /// Responses abandoned after the bounded TX retry gave up.
    pub tx_give_ups: u64,
    /// Requests whose buffer could not hold a wire header — dropped
    /// without running the handler (see the guard in the loop).
    pub rx_malformed: u64,
    /// Injected stalls that fired (chaos runs only).
    pub stalls_injected: u64,
}

/// Runs the worker loop until a [`WorkMsg::Shutdown`] arrives.
///
/// `telemetry` carries this worker's index plus the shared recorder; when
/// present the worker accounts its measured busy time there (one relaxed
/// atomic add per request — never on the handler's critical path).
///
/// Idle iterations yield to the OS scheduler so oversubscribed test
/// environments (more threads than cores) stay live. When `idle_backoff`
/// is set, a worker that stays idle past a short yield-spin phase parks
/// for that long per iteration instead — see
/// [`crate::ServerBuilder::idle_backoff`] for the trade-off.
///
/// `fault` optionally injects a one-shot [`StallFault`]: once the worker
/// has handled `after_requests` requests, it blocks for the configured
/// duration *before* the timed handler section of its next request. The
/// stall is invisible to service-time profiling (the handler itself is
/// still fast) but very visible to the dispatcher's wall-clock health
/// check — exactly the failure mode quarantine exists for.
pub fn run_worker(
    mut work_rx: spsc::Consumer<WorkMsg>,
    mut completion_tx: spsc::Producer<Completion>,
    nic: NetContext,
    mut handler: Box<dyn RequestHandler>,
    telemetry: Option<(usize, Arc<Telemetry>)>,
    mut fault: Option<StallFault>,
    idle_backoff: Option<Duration>,
) -> WorkerReport {
    let mut report = WorkerReport::default();
    let mut idle_spins: u32 = 0;
    loop {
        let msg = match work_rx.pop() {
            Some(m) => m,
            None => {
                idle_spins = idle_spins.saturating_add(1);
                match idle_backoff {
                    // audit:allow(A3): the opt-in idle-backoff ladder —
                    // parks only after sustained unproductive spins
                    Some(park) if idle_spins > IDLE_SPINS_BEFORE_PARK => std::thread::sleep(park),
                    _ => std::thread::yield_now(),
                }
                continue;
            }
        };
        idle_spins = 0;
        match msg {
            WorkMsg::Shutdown => return report,
            WorkMsg::Request { mut buf, ty, id: _ } => {
                if let Some(f) = fault {
                    if report.handled >= f.after_requests {
                        fault = None;
                        report.stalls_injected += 1;
                        // audit:allow(A3): deliberate fault injection — the
                        // stall IS the failure mode under test
                        std::thread::sleep(f.stall);
                    }
                }
                // A buffer too short for a wire header cannot carry a
                // payload or be rewritten into a response. The dispatcher
                // validates ingress, but a real-socket path can hand over
                // kernel-truncated datagrams — slicing `raw[HEADER_LEN..]`
                // below would then panic the worker. Drop it, count it,
                // and still signal completion so the engine frees the
                // core.
                if buf.len() < wire::HEADER_LEN || buf.capacity() < wire::HEADER_LEN {
                    report.rx_malformed += 1;
                    if let Some((_, tel)) = &telemetry {
                        tel.record_rx_malformed();
                    }
                    drop(buf);
                    let mut c = Completion {
                        service: Nanos::ZERO,
                    };
                    while let Err(back) = completion_tx.push(c) {
                        c = back.0;
                        std::thread::yield_now();
                    }
                    continue;
                }
                let started = Instant::now();
                // The handler sees only the payload region; the header is
                // rewritten in place below (zero-copy response, §4.3.1).
                let total_len = buf.len();
                let payload_len = total_len.saturating_sub(wire::HEADER_LEN);
                let resp_payload_len = {
                    let raw = buf.raw_mut();
                    // audit:allow(A1): capacity >= HEADER_LEN, checked by the
                    // malformed-datagram guard above
                    let payload = &mut raw[wire::HEADER_LEN..];
                    handler.handle(ty, payload, payload_len)
                };
                let service = Nanos::from_nanos(started.elapsed().as_nanos() as u64);
                report.handled += 1;
                report.busy = report.busy.saturating_add(service);
                if let Some((idx, tel)) = &telemetry {
                    tel.record_worker_busy(*idx, service.as_nanos());
                }

                buf.set_len(wire::HEADER_LEN + resp_payload_len);
                let status = wire::Status::Ok;
                if wire::request_to_response_in_place(
                    // audit:allow(A1): capacity >= HEADER_LEN, checked by
                    // the malformed-datagram guard above
                    &mut buf.raw_mut()[..wire::HEADER_LEN],
                    status,
                )
                .is_ok()
                {
                    // Retry on a briefly full TX queue; if the client has
                    // vanished (queue stays full), drop the response after
                    // a bounded number of attempts instead of wedging the
                    // pipeline — and account the give-up.
                    if nic.send_with_retry(buf, TX_RETRY_ATTEMPTS).is_err() {
                        report.tx_give_ups += 1;
                        if let Some((idx, tel)) = &telemetry {
                            tel.record_tx_give_up(*idx);
                        }
                    }
                }
                // Signal completion; the ring is sized for the worker's
                // in-flight bound, so a full ring is a protocol bug we
                // surface by spinning (visible in tests as a hang).
                let mut c = Completion { service };
                while let Err(back) = completion_tx.push(c) {
                    c = back.0;
                    std::thread::yield_now();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handler::SpinHandler;
    use persephone_core::types::TypeId;
    use persephone_net::nic;
    use persephone_net::pool::PacketBuf;
    use persephone_store::spin::SpinCalibration;

    fn request_packet(ty: u32, id: u64, payload: &[u8]) -> PacketBuf {
        let mut buf = PacketBuf::with_capacity(256);
        let len = wire::encode_request(buf.raw_mut(), ty, id, payload).unwrap();
        buf.set_len(len);
        buf
    }

    #[test]
    fn worker_serves_and_signals_completion() {
        let (mut work_tx, work_rx) = spsc::channel::<WorkMsg>(8);
        let (completion_tx, mut completion_rx) = spsc::channel::<Completion>(8);
        let (mut client, server) = nic::loopback(8);
        let handler = Box::new(SpinHandler::new(
            SpinCalibration::fixed(0.001),
            &[Nanos::from_micros(1)],
        ));
        let ctx = server.context();
        let tel = Arc::new(Telemetry::new(persephone_telemetry::TelemetryConfig::new(
            1, 2,
        )));
        let tel_worker = Some((1, tel.clone()));
        let t = std::thread::spawn(move || {
            run_worker(work_rx, completion_tx, ctx, handler, tel_worker, None, None)
        });

        work_tx
            .push(WorkMsg::Request {
                buf: request_packet(0, 77, b"hi"),
                ty: TypeId::new(0),
                id: 77,
            })
            .unwrap();
        work_tx.push(WorkMsg::Shutdown).unwrap();
        let report = t.join().unwrap();
        assert_eq!(report.handled, 1);

        // The completion carries a measured service time.
        let c = completion_rx.pop().expect("completion signalled");
        assert!(c.service > Nanos::ZERO);

        // The response reached the NIC with the id echoed.
        let resp = client.recv().expect("response transmitted");
        let (hdr, _) = wire::decode(resp.as_slice()).unwrap();
        assert_eq!(hdr.kind, wire::Kind::Response);
        assert_eq!(hdr.id, 77);
        assert_eq!(wire::response_status(&hdr), Some(wire::Status::Ok));

        // The worker accounted its busy time under its own slot.
        let snap = tel.snapshot();
        assert_eq!(snap.workers[0].busy_ns, 0);
        assert!(snap.workers[1].busy_ns > 0);
    }

    #[test]
    fn truncated_request_is_counted_not_a_panic() {
        // Regression (wire-path hardening): a buffer shorter than the
        // wire header used to panic the worker thread at the payload
        // slice (`raw[HEADER_LEN..]` past capacity). It must instead be
        // dropped, counted as malformed, and still free the core.
        let (mut work_tx, work_rx) = spsc::channel::<WorkMsg>(8);
        let (completion_tx, mut completion_rx) = spsc::channel::<Completion>(8);
        let (_client, server) = nic::loopback(8);
        let handler = Box::new(SpinHandler::new(
            SpinCalibration::fixed(0.001),
            &[Nanos::from_micros(1)],
        ));
        let ctx = server.context();
        let tel = Arc::new(Telemetry::new(persephone_telemetry::TelemetryConfig::new(
            1, 1,
        )));
        let tel_worker = Some((0, tel.clone()));
        // Capacity 8 < HEADER_LEN: the pre-fix slice panics outright.
        let runt = PacketBuf::with_capacity(8);
        // A full-capacity buffer with a short valid prefix is the
        // kernel-truncated-datagram shape: capacity fits a header, the
        // received bytes do not.
        let mut short = PacketBuf::with_capacity(256);
        short.fill(b"tiny");
        work_tx
            .push(WorkMsg::Request {
                buf: runt,
                ty: TypeId::new(0),
                id: 1,
            })
            .unwrap();
        work_tx
            .push(WorkMsg::Request {
                buf: short,
                ty: TypeId::new(0),
                id: 2,
            })
            .unwrap();
        work_tx.push(WorkMsg::Shutdown).unwrap();
        let report = std::thread::spawn(move || {
            run_worker(work_rx, completion_tx, ctx, handler, tel_worker, None, None)
        })
        .join()
        .expect("malformed buffers must not panic the worker");
        assert_eq!(report.rx_malformed, 2);
        assert_eq!(report.handled, 0, "the handler never ran");
        // Both requests still signalled completion (the engine frees the
        // worker either way).
        let mut completions = 0;
        while completion_rx.pop().is_some() {
            completions += 1;
        }
        assert_eq!(completions, 2);
        assert_eq!(tel.snapshot().rx_malformed, 2);
    }

    #[test]
    fn worker_report_accumulates() {
        let (mut work_tx, work_rx) = spsc::channel::<WorkMsg>(16);
        let (completion_tx, mut completion_rx) = spsc::channel::<Completion>(16);
        let (_client, server) = nic::loopback(16);
        let handler = Box::new(SpinHandler::new(
            SpinCalibration::fixed(0.001),
            &[Nanos::from_micros(1)],
        ));
        let ctx = server.context();
        for i in 0..5 {
            work_tx
                .push(WorkMsg::Request {
                    buf: request_packet(0, i, b""),
                    ty: TypeId::new(0),
                    id: i,
                })
                .unwrap();
        }
        work_tx.push(WorkMsg::Shutdown).unwrap();
        let report = std::thread::spawn(move || {
            run_worker(work_rx, completion_tx, ctx, handler, None, None, None)
        })
        .join()
        .unwrap();
        assert_eq!(report.handled, 5);
        assert!(report.busy > Nanos::ZERO);
        let mut completions = 0;
        while completion_rx.pop().is_some() {
            completions += 1;
        }
        assert_eq!(completions, 5);
    }

    #[test]
    fn worker_stall_fault_fires_once() {
        let (mut work_tx, work_rx) = spsc::channel::<WorkMsg>(16);
        let (completion_tx, mut completion_rx) = spsc::channel::<Completion>(16);
        let (_client, server) = nic::loopback(16);
        let handler = Box::new(SpinHandler::new(
            SpinCalibration::fixed(0.001),
            &[Nanos::from_micros(1)],
        ));
        let ctx = server.context();
        for i in 0..4 {
            work_tx
                .push(WorkMsg::Request {
                    buf: request_packet(0, i, b""),
                    ty: TypeId::new(0),
                    id: i,
                })
                .unwrap();
        }
        work_tx.push(WorkMsg::Shutdown).unwrap();
        let fault = Some(StallFault {
            after_requests: 1,
            stall: std::time::Duration::from_millis(5),
        });
        let report = std::thread::spawn(move || {
            run_worker(work_rx, completion_tx, ctx, handler, None, fault, None)
        })
        .join()
        .unwrap();
        assert_eq!(report.handled, 4, "the stall delays, never drops");
        assert_eq!(report.stalls_injected, 1, "one-shot: fires exactly once");
        assert_eq!(report.tx_give_ups, 0);
        let mut completions = 0;
        while completion_rx.pop().is_some() {
            completions += 1;
        }
        assert_eq!(completions, 4);
    }
}
