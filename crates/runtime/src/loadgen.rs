//! Open-loop Poisson load generator (paper §5.1's client).
//!
//! Sends typed requests at exponentially distributed intervals regardless
//! of response progress (open loop — the client never waits), records
//! per-type response latencies, and recycles response buffers into its
//! packet pool.

use std::time::{Duration, Instant};

use persephone_net::nic::ClientPort;
use persephone_net::pool::PoolAllocator;
use persephone_net::wire;

/// One request type in the client mix.
#[derive(Clone, Debug)]
pub struct LoadType {
    /// Wire type id.
    pub ty: u32,
    /// Fraction of traffic, `(0, 1]`.
    pub ratio: f64,
    /// Request payload bytes.
    pub payload: Vec<u8>,
}

/// The client mix.
#[derive(Clone, Debug)]
pub struct LoadSpec {
    /// The typed mixes; ratios must sum to ≈1.
    pub types: Vec<LoadType>,
}

impl LoadSpec {
    /// Creates a spec, validating ratios.
    ///
    /// # Panics
    ///
    /// Panics if empty or ratios do not sum to ≈1.
    pub fn new(types: Vec<LoadType>) -> Self {
        assert!(!types.is_empty());
        let total: f64 = types.iter().map(|t| t.ratio).sum();
        assert!((total - 1.0).abs() < 0.01, "ratios must sum to 1");
        LoadSpec { types }
    }
}

/// Client-side results.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Requests sent.
    pub sent: u64,
    /// Ok responses received.
    pub received: u64,
    /// Server-shed requests (Dropped status).
    pub dropped: u64,
    /// BadRequest responses.
    pub rejected: u64,
    /// Sends skipped because the packet pool was empty.
    pub starved: u64,
    /// Response latencies (ns) per type index.
    pub latencies_ns: Vec<Vec<u64>>,
}

impl LoadReport {
    /// Exact percentile (0–1) of one type's latencies, in nanoseconds.
    pub fn percentile_ns(&self, ty: usize, p: f64) -> Option<u64> {
        let mut v = self.latencies_ns.get(ty)?.clone();
        if v.is_empty() {
            return None;
        }
        v.sort_unstable();
        let rank = (((v.len() as f64) * p).ceil() as usize).clamp(1, v.len()) - 1;
        Some(v[rank])
    }

    /// Mean latency of one type, nanoseconds.
    pub fn mean_ns(&self, ty: usize) -> Option<f64> {
        let v = self.latencies_ns.get(ty)?;
        if v.is_empty() {
            return None;
        }
        Some(v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64)
    }
}

/// Runs an open-loop Poisson client for `duration` at `rate_rps`, then
/// drains outstanding responses for up to `grace`.
///
/// The pool bounds client memory: if it runs dry (server slower than the
/// offered rate and responses not yet returned), sends are skipped and
/// counted in [`LoadReport::starved`].
pub fn run_open_loop(
    client: &mut ClientPort,
    pool: &mut PoolAllocator,
    spec: &LoadSpec,
    rate_rps: f64,
    duration: Duration,
    grace: Duration,
    seed: u64,
) -> LoadReport {
    assert!(rate_rps > 0.0);
    let num_types = spec.types.len();
    let mut report = LoadReport {
        latencies_ns: vec![Vec::new(); num_types],
        ..Default::default()
    };
    // Splitmix-based deterministic exponential gaps and type picks.
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut next_u64 = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mean_gap_ns = 1e9 / rate_rps;
    let weights: Vec<f64> = spec.types.iter().map(|t| t.ratio).collect();
    let total_w: f64 = weights.iter().sum();

    let start = Instant::now();
    let deadline = start + duration;
    // In-flight bookkeeping: id → (send instant, type index).
    let mut inflight: Vec<Option<(Instant, usize)>> = Vec::new();
    let mut next_send = start;
    let mut next_id: u64 = 0;
    let mut releaser = pool.releaser();

    let drain = |client: &mut ClientPort,
                 inflight: &mut Vec<Option<(Instant, usize)>>,
                 report: &mut LoadReport,
                 releaser: &mut persephone_net::pool::PoolReleaser| {
        while let Some(pkt) = client.recv() {
            if let Ok((hdr, _)) = wire::decode(pkt.as_slice()) {
                match wire::response_status(&hdr) {
                    Some(wire::Status::Ok) => {
                        if let Some(Some((sent_at, ty))) =
                            inflight.get_mut(hdr.id as usize).map(|s| s.take())
                        {
                            report.received += 1;
                            report.latencies_ns[ty].push(sent_at.elapsed().as_nanos() as u64);
                        }
                    }
                    Some(wire::Status::Dropped) => {
                        if let Some(slot) = inflight.get_mut(hdr.id as usize) {
                            slot.take();
                        }
                        report.dropped += 1;
                    }
                    _ => report.rejected += 1,
                }
            }
            releaser.release(pkt);
        }
    };

    loop {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        if now >= next_send {
            // Schedule the next send first (open loop: the schedule never
            // depends on the server).
            let u = (next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let gap = -mean_gap_ns * (1.0 - u).ln();
            next_send += Duration::from_nanos(gap.max(1.0) as u64);

            // Pick the type.
            let mut x = (next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) * total_w;
            let mut ti = num_types - 1;
            for (i, w) in weights.iter().enumerate() {
                if x < *w {
                    ti = i;
                    break;
                }
                x -= w;
            }
            let lt = &spec.types[ti];

            releaser.flush();
            match pool.alloc() {
                Some(mut buf) => {
                    let id = next_id;
                    next_id += 1;
                    let len = wire::encode_request(buf.raw_mut(), lt.ty, id, &lt.payload)
                        .expect("pool buffers sized for requests");
                    buf.set_len(len);
                    inflight.push(Some((Instant::now(), ti)));
                    report.sent += 1;
                    let mut pkt = buf;
                    loop {
                        match client.send(pkt) {
                            Ok(()) => break,
                            Err(e) => {
                                pkt = e.0;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
                None => {
                    report.starved += 1;
                    // Keep id-space dense: skipped sends get no id.
                }
            }
        }
        drain(client, &mut inflight, &mut report, &mut releaser);
    }

    // Grace period: collect stragglers.
    let grace_deadline = Instant::now() + grace;
    while Instant::now() < grace_deadline && inflight.iter().any(|s| s.is_some()) {
        drain(client, &mut inflight, &mut report, &mut releaser);
        std::thread::yield_now();
    }
    releaser.flush();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_spec_validates_ratios() {
        let spec = LoadSpec::new(vec![LoadType {
            ty: 0,
            ratio: 1.0,
            payload: vec![],
        }]);
        assert_eq!(spec.types.len(), 1);
    }

    #[test]
    #[should_panic(expected = "ratios must sum to 1")]
    fn bad_ratios_rejected() {
        LoadSpec::new(vec![LoadType {
            ty: 0,
            ratio: 0.5,
            payload: vec![],
        }]);
    }

    #[test]
    fn report_percentiles() {
        let report = LoadReport {
            latencies_ns: vec![(1..=100u64).map(|i| i * 1000).collect()],
            ..Default::default()
        };
        assert_eq!(report.percentile_ns(0, 0.5), Some(50_000));
        assert_eq!(report.percentile_ns(0, 0.99), Some(99_000));
        assert_eq!(report.percentile_ns(0, 1.0), Some(100_000));
        assert!((report.mean_ns(0).unwrap() - 50_500.0).abs() < 1.0);
        assert_eq!(report.percentile_ns(1, 0.5), None);
        let empty = LoadReport {
            latencies_ns: vec![vec![]],
            ..Default::default()
        };
        assert_eq!(empty.percentile_ns(0, 0.5), None);
        assert_eq!(empty.mean_ns(0), None);
    }
}
