//! Open-loop Poisson load generator (paper §5.1's client).
//!
//! Sends typed requests at exponentially distributed intervals regardless
//! of response progress (open loop — the client never waits), records
//! per-type response latencies, and recycles response buffers into its
//! packet pool.
//!
//! In-flight bookkeeping is a bounded slab with one slot per pool buffer
//! (the pool already caps true in-flight count), keyed through the wire
//! id as `generation << SLOT_BITS | slot` (40 generation bits — wide
//! enough that ids never repeat within a run, even across a u32 wrap).
//! Requests whose response never arrives
//! — a lossy wire, a server that shed silently — are written off when
//! the grace window closes ([`LoadReport::timed_out`]), so memory stays
//! constant and the totals balance no matter how broken the server.

use std::time::{Duration, Instant};

use persephone_core::rng::Rng;
use persephone_net::nic::ClientPort;
use persephone_net::pool::{PoolAllocator, PoolReleaser};
use persephone_net::wire;

/// One request type in the client mix.
#[derive(Clone, Debug)]
pub struct LoadType {
    /// Wire type id.
    pub ty: u32,
    /// Fraction of traffic, `(0, 1]`.
    pub ratio: f64,
    /// Request payload bytes.
    pub payload: Vec<u8>,
}

/// The client mix.
#[derive(Clone, Debug)]
pub struct LoadSpec {
    /// The typed mixes; ratios must sum to ≈1.
    pub types: Vec<LoadType>,
}

impl LoadSpec {
    /// Creates a spec, validating ratios.
    ///
    /// # Panics
    ///
    /// Panics if empty or ratios do not sum to ≈1.
    pub fn new(types: Vec<LoadType>) -> Self {
        assert!(!types.is_empty());
        let total: f64 = types.iter().map(|t| t.ratio).sum();
        assert!((total - 1.0).abs() < 0.01, "ratios must sum to 1");
        LoadSpec { types }
    }
}

/// Client-side results.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Requests sent.
    pub sent: u64,
    /// Ok responses received.
    pub received: u64,
    /// Server-shed requests (Dropped status).
    pub dropped: u64,
    /// BadRequest responses.
    pub rejected: u64,
    /// Sends skipped because the packet pool was empty.
    pub starved: u64,
    /// Requests whose response never arrived within the grace window —
    /// lost on the wire or silently discarded server-side.
    pub timed_out: u64,
    /// Requests delivered into each NIC TX queue, in queue order — shows
    /// how the client's steering spread load across dispatcher shards
    /// (one entry for a single-queue port).
    pub per_queue_sent: Vec<u64>,
    /// Response latencies (ns) per type index.
    pub latencies_ns: Vec<Vec<u64>>,
    sorted: bool,
}

impl LoadReport {
    /// Sorts the latency vectors in place so subsequent
    /// [`LoadReport::percentile_ns`] calls index directly instead of
    /// cloning and re-sorting. [`run_open_loop`] calls this before
    /// returning; call it again only after mutating `latencies_ns`.
    pub fn finalize(&mut self) {
        for v in &mut self.latencies_ns {
            v.sort_unstable();
        }
        self.sorted = true;
    }

    /// Exact percentile (0–1) of one type's latencies, in nanoseconds.
    ///
    /// O(1) after [`LoadReport::finalize`]; falls back to a clone-and-sort
    /// for hand-built unsorted reports.
    pub fn percentile_ns(&self, ty: usize, p: f64) -> Option<u64> {
        let v = self.latencies_ns.get(ty)?;
        if v.is_empty() {
            return None;
        }
        let rank = (((v.len() as f64) * p).ceil() as usize).clamp(1, v.len()) - 1;
        if self.sorted {
            return Some(v[rank]);
        }
        let mut v = v.clone();
        v.sort_unstable();
        Some(v[rank])
    }

    /// Mean latency of one type, nanoseconds.
    pub fn mean_ns(&self, ty: usize) -> Option<f64> {
        let v = self.latencies_ns.get(ty)?;
        if v.is_empty() {
            return None;
        }
        Some(v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64)
    }
}

/// Bits of the wire id that address a slab slot; the rest carry the
/// slot's generation. 24 bits cover any plausible pool (16M buffers)
/// while leaving 40 generation bits — at one reuse per microsecond a
/// slot's generation first repeats after ~12 days, so a stale response
/// can never alias a live request within a run.
const SLOT_BITS: u32 = 24;
const SLOT_MASK: u64 = (1 << SLOT_BITS) - 1;
const GEN_MASK: u64 = (1 << (64 - SLOT_BITS)) - 1;

/// The in-flight slab: fixed slots, a free list, and per-slot generations
/// so a response to an already-reclaimed (timed-out) slot is recognised
/// as stale instead of crediting a newer request.
struct Inflight {
    slots: Vec<Option<(Instant, usize)>>,
    gens: Vec<u64>,
    free: Vec<usize>,
    live: usize,
}

impl Inflight {
    fn new(capacity: usize) -> Self {
        assert!(
            capacity as u64 <= SLOT_MASK + 1,
            "inflight slab capped at 2^{SLOT_BITS} slots"
        );
        Inflight {
            slots: vec![None; capacity],
            gens: vec![0; capacity],
            free: (0..capacity).rev().collect(),
            live: 0,
        }
    }

    /// Claims a slot, returning the wire id to stamp on the request.
    fn claim(&mut self, sent_at: Instant, ty: usize) -> Option<u64> {
        let slot = self.free.pop()?;
        self.slots[slot] = Some((sent_at, ty));
        self.live += 1;
        Some((self.gens[slot] << SLOT_BITS) | slot as u64)
    }

    /// Reclaims the slot a response's wire id names, if it is still the
    /// same generation (i.e. not a stale duplicate of a reused slot).
    fn reclaim(&mut self, id: u64) -> Option<(Instant, usize)> {
        let slot = (id & SLOT_MASK) as usize;
        let gen = id >> SLOT_BITS;
        if slot >= self.slots.len() || self.gens[slot] != gen {
            return None;
        }
        let entry = self.slots[slot].take()?;
        self.gens[slot] = (self.gens[slot] + 1) & GEN_MASK;
        self.free.push(slot);
        self.live -= 1;
        Some(entry)
    }
}

/// Drains every response currently readable from `client` into `report`,
/// reconciling each against the in-flight slab and recycling the buffer.
fn drain_responses(
    client: &mut ClientPort,
    inflight: &mut Inflight,
    report: &mut LoadReport,
    releaser: &mut PoolReleaser,
) {
    while let Some(pkt) = client.recv() {
        if let Ok((hdr, _)) = wire::decode(pkt.as_slice()) {
            let matched = inflight.reclaim(hdr.id);
            match wire::response_status(&hdr) {
                Some(wire::Status::Ok) => {
                    if let Some((sent_at, ty)) = matched {
                        report.received += 1;
                        report.latencies_ns[ty].push(sent_at.elapsed().as_nanos() as u64);
                    }
                }
                Some(wire::Status::Dropped) => report.dropped += 1,
                _ => report.rejected += 1,
            }
        }
        releaser.release(pkt);
    }
}

/// Runs an open-loop Poisson client for `duration` at `rate_rps`, then
/// drains outstanding responses for up to `grace`.
///
/// The pool bounds client memory: if it runs dry (server slower than the
/// offered rate and responses not yet returned), sends are skipped and
/// counted in [`LoadReport::starved`]. Requests still unanswered when the
/// grace window closes are written off as [`LoadReport::timed_out`] —
/// lost on the wire or silently discarded server-side — so
/// `sent == received + dropped + rejected + timed_out` always balances.
///
/// The returned report is already [`LoadReport::finalize`]d.
pub fn run_open_loop(
    client: &mut ClientPort,
    pool: &mut PoolAllocator,
    spec: &LoadSpec,
    rate_rps: f64,
    duration: Duration,
    grace: Duration,
    seed: u64,
) -> LoadReport {
    assert!(rate_rps > 0.0);
    let num_types = spec.types.len();
    let mut report = LoadReport {
        latencies_ns: vec![Vec::new(); num_types],
        ..Default::default()
    };
    // The shared seeded xoshiro streams (one forked stream per concern,
    // exactly like the simulator's `ArrivalGen`), so gaps and type picks
    // are drawn from the same generator on both backends.
    let mut root = Rng::new(seed);
    let mut rng_arrival = root.fork();
    let mut rng_type = root.fork();
    let mean_gap_ns = 1e9 / rate_rps;
    let weights: Vec<f64> = spec.types.iter().map(|t| t.ratio).collect();

    let start = Instant::now();
    let deadline = start + duration;
    // One slab slot per pool buffer: the pool already bounds how many
    // requests can truly be outstanding.
    let mut inflight = Inflight::new(pool.total().max(1));
    let mut next_send = start;
    let mut releaser = pool.releaser();

    loop {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        if now >= next_send {
            // Schedule the next send first (open loop: the schedule never
            // depends on the server).
            let gap = rng_arrival.next_exp(mean_gap_ns);
            next_send += Duration::from_nanos(gap.max(1.0) as u64);

            // Pick the type.
            let ti = rng_type.pick_weighted(&weights);
            let lt = &spec.types[ti];

            releaser.flush();
            match pool.alloc() {
                Some(buf) => match inflight.claim(Instant::now(), ti) {
                    Some(id) => {
                        let mut buf = buf;
                        let len = wire::encode_request(buf.raw_mut(), lt.ty, id, &lt.payload)
                            .expect("pool buffers sized for requests");
                        buf.set_len(len);
                        report.sent += 1;
                        let mut pkt = buf;
                        loop {
                            match client.send(pkt) {
                                Ok(()) => break,
                                Err(e) => {
                                    pkt = e.0;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                    None => {
                        // Unreachable in practice (one slot per buffer),
                        // but return the buffer rather than leak it.
                        report.starved += 1;
                        releaser.release(buf);
                    }
                },
                None => report.starved += 1,
            }
        }
        drain_responses(client, &mut inflight, &mut report, &mut releaser);
    }

    // Grace period: collect stragglers.
    let grace_deadline = Instant::now() + grace;
    while Instant::now() < grace_deadline && inflight.live > 0 {
        drain_responses(client, &mut inflight, &mut report, &mut releaser);
        std::thread::yield_now();
    }
    // Whatever is still unanswered when the client gives up waiting has,
    // by definition, timed out; its slab slot dies with the slab.
    report.timed_out += inflight.live as u64;
    report.per_queue_sent = client.per_queue_sent().to_vec();
    releaser.flush();
    report.finalize();
    report
}

/// One pre-sampled request of a scenario schedule: send `at` nanoseconds
/// after the run starts, typed `ty`, asking the server to burn
/// `service_ns` of CPU (carried in the payload for
/// [`crate::handler::PayloadSpinHandler`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduledRequest {
    /// Send offset from the start of the run, in nanoseconds.
    pub at_ns: u64,
    /// Wire type id.
    pub ty: u32,
    /// Per-request service demand, nanoseconds.
    pub service_ns: u64,
}

/// Replays a pre-sampled schedule open-loop, then drains responses for up
/// to `grace`.
///
/// Where [`run_open_loop`] samples gaps and types on the fly, this replays
/// a schedule the scenario engine materialized up front — the *same*
/// trace the simulator consumes — so both backends serve an identical
/// request sequence under a fixed seed. Each request's sampled service
/// time travels in its first 8 payload bytes (little-endian nanoseconds);
/// pair with [`crate::handler::PayloadSpinHandler`] so arbitrary
/// service-time distributions replay exactly as sampled.
///
/// `num_types` sizes the per-type latency vectors (schedule entries with
/// `ty >= num_types` are still sent, but their latencies land in the last
/// slot). The same ledger balance as [`run_open_loop`] holds:
/// `sent == received + dropped + rejected + timed_out`, with skipped
/// sends in [`LoadReport::starved`].
///
/// The returned report is already [`LoadReport::finalize`]d.
pub fn run_scheduled(
    client: &mut ClientPort,
    pool: &mut PoolAllocator,
    num_types: usize,
    schedule: &[ScheduledRequest],
    grace: Duration,
) -> LoadReport {
    assert!(num_types > 0, "run_scheduled needs at least one type");
    let mut report = LoadReport {
        latencies_ns: vec![Vec::new(); num_types],
        ..Default::default()
    };
    let start = Instant::now();
    let mut inflight = Inflight::new(pool.total().max(1));
    let mut releaser = pool.releaser();

    for req in schedule {
        // Open loop: wait for the scheduled send time regardless of
        // response progress, draining responses while early.
        loop {
            let elapsed = start.elapsed().as_nanos() as u64;
            if elapsed >= req.at_ns {
                break;
            }
            drain_responses(client, &mut inflight, &mut report, &mut releaser);
        }
        releaser.flush();
        let ti = (req.ty as usize).min(num_types - 1);
        match pool.alloc() {
            Some(mut buf) => match inflight.claim(Instant::now(), ti) {
                Some(id) => {
                    let payload = req.service_ns.to_le_bytes();
                    let len = wire::encode_request(buf.raw_mut(), req.ty, id, &payload)
                        .expect("pool buffers sized for requests");
                    buf.set_len(len);
                    report.sent += 1;
                    let mut pkt = buf;
                    loop {
                        match client.send(pkt) {
                            Ok(()) => break,
                            Err(e) => {
                                pkt = e.0;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
                None => {
                    report.starved += 1;
                    releaser.release(buf);
                }
            },
            None => report.starved += 1,
        }
        drain_responses(client, &mut inflight, &mut report, &mut releaser);
    }

    let grace_deadline = Instant::now() + grace;
    while Instant::now() < grace_deadline && inflight.live > 0 {
        drain_responses(client, &mut inflight, &mut report, &mut releaser);
        std::thread::yield_now();
    }
    report.timed_out += inflight.live as u64;
    report.per_queue_sent = client.per_queue_sent().to_vec();
    releaser.flush();
    report.finalize();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_spec_validates_ratios() {
        let spec = LoadSpec::new(vec![LoadType {
            ty: 0,
            ratio: 1.0,
            payload: vec![],
        }]);
        assert_eq!(spec.types.len(), 1);
    }

    #[test]
    #[should_panic(expected = "ratios must sum to 1")]
    fn bad_ratios_rejected() {
        LoadSpec::new(vec![LoadType {
            ty: 0,
            ratio: 0.5,
            payload: vec![],
        }]);
    }

    #[test]
    fn report_percentiles() {
        let report = LoadReport {
            latencies_ns: vec![(1..=100u64).map(|i| i * 1000).collect()],
            ..Default::default()
        };
        assert_eq!(report.percentile_ns(0, 0.5), Some(50_000));
        assert_eq!(report.percentile_ns(0, 0.99), Some(99_000));
        assert_eq!(report.percentile_ns(0, 1.0), Some(100_000));
        assert!((report.mean_ns(0).unwrap() - 50_500.0).abs() < 1.0);
        assert_eq!(report.percentile_ns(1, 0.5), None);
        let empty = LoadReport {
            latencies_ns: vec![vec![]],
            ..Default::default()
        };
        assert_eq!(empty.percentile_ns(0, 0.5), None);
        assert_eq!(empty.mean_ns(0), None);
    }

    #[test]
    fn finalized_percentiles_agree_with_exact_sort_oracle() {
        // Deterministically shuffled latencies: finalize() must answer
        // every percentile exactly as a fresh clone-and-sort would.
        let mut vals: Vec<u64> = (0..997u64).map(|i| (i * 7919) % 100_003).collect();
        let oracle = {
            let mut v = vals.clone();
            v.sort_unstable();
            v
        };
        vals.rotate_left(313);
        let mut report = LoadReport {
            latencies_ns: vec![vals],
            ..Default::default()
        };
        let unsorted: Vec<Option<u64>> = [0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0]
            .iter()
            .map(|&p| report.percentile_ns(0, p))
            .collect();
        report.finalize();
        for (i, &p) in [0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0].iter().enumerate() {
            let rank = (((oracle.len() as f64) * p).ceil() as usize).clamp(1, oracle.len()) - 1;
            let want = Some(oracle[rank]);
            assert_eq!(report.percentile_ns(0, p), want, "p={p}");
            assert_eq!(unsorted[i], want, "unsorted fallback disagrees at p={p}");
            // Repeated queries stay stable (no re-sorting side effects).
            assert_eq!(report.percentile_ns(0, p), want, "p={p} repeat");
        }
    }

    #[test]
    fn inflight_slab_is_bounded_and_generation_checked() {
        let mut slab = Inflight::new(2);
        let t0 = Instant::now();
        let a = slab.claim(t0, 0).unwrap();
        let b = slab.claim(t0, 1).unwrap();
        assert!(slab.claim(t0, 0).is_none(), "slab is bounded");
        assert_eq!(slab.live, 2);
        assert_eq!(slab.reclaim(a).map(|(_, ty)| ty), Some(0));
        assert_eq!(slab.live, 1);
        assert!(slab.reclaim(a).is_none(), "stale generation rejected");
        // The reused slot gets a fresh generation distinct from the old id.
        let c = slab.claim(Instant::now(), 1).unwrap();
        assert_ne!(c, a);
        assert_ne!(c, b);
        assert_eq!(slab.reclaim(c).map(|(_, ty)| ty), Some(1));
        assert!(slab.reclaim(c).is_none(), "double reclaim rejected");
        assert_eq!(slab.reclaim(b).map(|(_, ty)| ty), Some(1));
        assert_eq!(slab.live, 0, "everything reclaimed");
    }

    #[test]
    fn generation_tag_survives_u32_wraparound() {
        let mut slab = Inflight::new(1);
        let t = Instant::now();
        let first = slab.claim(t, 0).unwrap();
        slab.reclaim(first).unwrap();
        // Fast-forward this slot to the 32-bit generation boundary.
        slab.gens[0] = u64::from(u32::MAX);
        let at_edge = slab.claim(t, 1).unwrap();
        assert_eq!(at_edge >> SLOT_BITS, u64::from(u32::MAX));
        slab.reclaim(at_edge).unwrap();
        let past_edge = slab.claim(t, 2).unwrap();
        // When the generation was stored as a u32 it wrapped to 0 here,
        // making this id identical to `first`: a stale response for the
        // long-dead original request would be credited to this new one.
        assert_ne!(
            past_edge, first,
            "wire id must not repeat across the u32 boundary"
        );
        assert_eq!(past_edge >> SLOT_BITS, u64::from(u32::MAX) + 1);
        assert!(slab.reclaim(first).is_none(), "stale pre-wrap id rejected");
        assert_eq!(slab.reclaim(past_edge).map(|(_, ty)| ty), Some(2));
    }

    #[test]
    fn generation_wrap_at_full_width_is_masked() {
        // At the (astronomically distant) top of the 40-bit generation
        // space the counter must wrap cleanly instead of leaking into the
        // slot bits.
        let mut slab = Inflight::new(2);
        slab.gens[0] = GEN_MASK;
        let id = slab.claim(Instant::now(), 0).unwrap();
        assert_eq!(id & SLOT_MASK, 0, "free list hands out slot 0 first");
        assert_eq!(id >> SLOT_BITS, GEN_MASK);
        slab.reclaim(id).unwrap();
        assert_eq!(slab.gens[0], 0, "generation wraps within its field");
        let reused = slab.claim(Instant::now(), 0).unwrap();
        assert_eq!(reused & SLOT_MASK, 0);
        assert_eq!(reused >> SLOT_BITS, 0);
    }
}
