//! Messages exchanged between the dispatcher and application workers
//! (paper §4.3.2): work pushes on the downstream SPSC ring, completion
//! notifications on the upstream ring.
//!
//! Delivery of a [`WorkMsg`] is at-least-offered, not fire-and-forget: if
//! a worker's downstream ring is full, the dispatcher holds the message
//! and re-offers it on its next loop iteration instead of panicking (see
//! `run_dispatcher`), so ring pressure degrades to latency, never to a
//! crash.

use persephone_core::time::Nanos;
use persephone_core::types::TypeId;
use persephone_net::pool::PacketBuf;

/// Dispatcher → worker.
#[derive(Debug)]
pub enum WorkMsg {
    /// Run one request.
    Request {
        /// The packet buffer holding the request (reused for the response).
        buf: PacketBuf,
        /// The classified request type.
        ty: TypeId,
        /// The wire request id (echoed in the response).
        id: u64,
    },
    /// Terminate the worker loop.
    Shutdown,
}

/// Worker → dispatcher: a work-completion control message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// Measured service time of the completed request.
    pub service: Nanos,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_messages_traverse_spsc_rings() {
        let (mut tx, mut rx) = persephone_net::spsc::channel::<WorkMsg>(4);
        let mut buf = PacketBuf::with_capacity(16);
        buf.fill(b"req");
        tx.push(WorkMsg::Request {
            buf,
            ty: TypeId::new(1),
            id: 42,
        })
        .unwrap();
        tx.push(WorkMsg::Shutdown).unwrap();
        match rx.pop().unwrap() {
            WorkMsg::Request { buf, ty, id } => {
                assert_eq!(buf.as_slice(), b"req");
                assert_eq!(ty, TypeId::new(1));
                assert_eq!(id, 42);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(rx.pop(), Some(WorkMsg::Shutdown)));
    }

    #[test]
    fn completions_traverse_spsc_rings() {
        let (mut tx, mut rx) = persephone_net::spsc::channel::<Completion>(4);
        tx.push(Completion {
            service: Nanos::from_micros(3),
        })
        .unwrap();
        assert_eq!(
            rx.pop(),
            Some(Completion {
                service: Nanos::from_micros(3)
            })
        );
    }
}
