//! # persephone-runtime — the threaded Perséphone pipeline
//!
//! A real, concurrent implementation of the Perséphone architecture
//! (paper Figure 2) over the in-process substrates of `persephone-net`:
//! a combined net-worker/dispatcher thread classifies requests and runs
//! the DARC engine; application worker threads execute handlers and
//! transmit responses on their own NIC contexts; completion notifications
//! flow back over SPSC rings and drive profiling and reservation updates.
//!
//! On the paper's testbed this pipeline would sit on DPDK; here it runs on
//! a loopback NIC so the full system is exercised end to end in tests and
//! examples (figure-scale *throughput* numbers come from `persephone-sim`,
//! as in the paper's own simulations).
//!
//! ## Quickstart
//!
//! ```
//! use persephone_core::classifier::HeaderClassifier;
//! use persephone_core::time::Nanos;
//! use persephone_net::{pool::BufferPool, wire};
//! use persephone_runtime::handler::SpinHandler;
//! use persephone_runtime::loadgen::{run_open_loop, LoadSpec, LoadType};
//! use persephone_runtime::server::ServerBuilder;
//! use persephone_store::spin::SpinCalibration;
//!
//! let cal = SpinCalibration::calibrate();
//! let (handle, bound) = ServerBuilder::new(2, 2)
//!     .hints(vec![Some(Nanos::from_micros(5)), Some(Nanos::from_micros(100))])
//!     .classifier(HeaderClassifier::new(wire::TYPE_OFFSET, 2))
//!     .handler_factory(move |_| {
//!         Box::new(SpinHandler::new(
//!             cal,
//!             &[Nanos::from_micros(5), Nanos::from_micros(100)],
//!         ))
//!     })
//!     .start()
//!     .expect("loopback start cannot fail");
//! let mut client = bound.into_loopback();
//!
//! let mut pool = BufferPool::new(128, 256);
//! let spec = LoadSpec::new(vec![
//!     LoadType { ty: 0, ratio: 0.9, payload: b"short".to_vec() },
//!     LoadType { ty: 1, ratio: 0.1, payload: b"long".to_vec() },
//! ]);
//! let report = run_open_loop(
//!     &mut client,
//!     &mut pool,
//!     &spec,
//!     2_000.0,
//!     std::time::Duration::from_millis(100),
//!     std::time::Duration::from_millis(500),
//!     7,
//! );
//! let server_report = handle.stop();
//! assert!(report.received > 0);
//! assert_eq!(server_report.handled(), report.sent - server_report.dispatcher.dropped);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod dispatcher;
pub mod fault;
pub mod handler;
pub mod loadgen;
pub mod messages;
pub mod server;
pub mod worker;

pub use fault::{FaultPlan, StallFault};
pub use handler::{
    KvHandler, PayloadSleepHandler, PayloadSpinHandler, RequestHandler, SpinHandler, TpccHandler,
};
pub use loadgen::{run_open_loop, LoadReport, LoadSpec, LoadType};
pub use server::{BoundTransport, RuntimeReport, ServerBuilder, ServerHandle, Transport};
