//! Application request handlers.
//!
//! A [`RequestHandler`] is the application code an application worker runs
//! for each dispatched request (paper §4.3.4): it reads the request
//! payload, performs the work, and formats the response payload *in
//! place* into the same packet buffer (zero-copy reuse, §4.3.1).
//!
//! Provided handlers:
//!
//! * [`SpinHandler`] — calibrated synthetic service times (the paper's
//!   bimodal workloads).
//! * [`KvHandler`] — GET/PUT/SCAN/DELETE over `persephone_store::KvStore`
//!   (the RocksDB experiment).
//! * [`TpccHandler`] — the five TPC-C transactions over a shared
//!   `persephone_store::TpccDb`.

use std::sync::Arc;

use persephone_core::time::Nanos;
use persephone_core::types::TypeId;
use persephone_store::kv::KvStore;
use persephone_store::spin::SpinCalibration;
use persephone_store::tpcc::{TpccDb, TpccInputGen, Transaction};
use std::sync::Mutex;

/// Application logic executed on worker cores.
pub trait RequestHandler: Send {
    /// Handles one request.
    ///
    /// `payload` is the request payload region of the packet buffer
    /// (everything after the wire header); on entry its first
    /// `request_len` bytes hold the request body. The handler writes the
    /// response body into the same region and returns its length (which
    /// must not exceed `payload.len()`).
    fn handle(&mut self, ty: TypeId, payload: &mut [u8], request_len: usize) -> usize;
}

/// Synthetic handler: burns a per-type calibrated amount of CPU.
pub struct SpinHandler {
    cal: SpinCalibration,
    service_ns: Vec<u64>,
}

impl SpinHandler {
    /// Creates a spinner with one service time per type; UNKNOWN and
    /// out-of-range types use the first entry.
    ///
    /// # Panics
    ///
    /// Panics if `service` is empty.
    pub fn new(cal: SpinCalibration, service: &[Nanos]) -> Self {
        assert!(!service.is_empty());
        SpinHandler {
            cal,
            service_ns: service.iter().map(|n| n.as_nanos()).collect(),
        }
    }
}

impl RequestHandler for SpinHandler {
    fn handle(&mut self, ty: TypeId, _payload: &mut [u8], _request_len: usize) -> usize {
        let idx = if ty.is_unknown() || ty.index() >= self.service_ns.len() {
            0
        } else {
            ty.index()
        };
        self.cal.spin_for_ns(self.service_ns[idx]);
        0
    }
}

/// Synthetic handler for scenario replays: burns the per-request service
/// time carried in the request payload's first 8 bytes (little-endian
/// nanoseconds), so arbitrary service-time distributions execute exactly
/// as the load generator sampled them (see
/// [`crate::loadgen::run_scheduled`]).
pub struct PayloadSpinHandler {
    cal: SpinCalibration,
    /// Safety clamp on a single request's demand, so a corrupt payload
    /// cannot wedge a worker for minutes.
    max_ns: u64,
}

impl PayloadSpinHandler {
    /// Creates a payload-driven spinner; single-request demand is clamped
    /// to `max` (pick comfortably above the workload's slowest type).
    pub fn new(cal: SpinCalibration, max: Nanos) -> Self {
        PayloadSpinHandler {
            cal,
            max_ns: max.as_nanos(),
        }
    }
}

impl RequestHandler for PayloadSpinHandler {
    fn handle(&mut self, _ty: TypeId, payload: &mut [u8], request_len: usize) -> usize {
        let ns = if request_len >= 8 {
            u64::from_le_bytes(payload[..8].try_into().expect("sliced to 8 bytes"))
        } else {
            0
        };
        self.cal.spin_for_ns(ns.min(self.max_ns));
        0
    }
}

/// Like [`PayloadSpinHandler`] but the worker *sleeps* for the requested
/// service time instead of burning CPU. Occupancy (a busy worker) is
/// modeled identically, but the core is free while the request "runs" —
/// which is what makes many-server rack scenarios runnable in one
/// process on a small machine, where K servers' worth of spinning would
/// oversubscribe every core and drown the scheduling signal in
/// contention. Accurate only for service times well above the OS sleep
/// granularity (hundreds of microseconds and up).
pub struct PayloadSleepHandler {
    /// Safety clamp on a single request's demand (see
    /// [`PayloadSpinHandler`]).
    max_ns: u64,
}

impl PayloadSleepHandler {
    /// Creates a payload-driven sleeper; single-request demand is clamped
    /// to `max`.
    pub fn new(max: Nanos) -> Self {
        PayloadSleepHandler {
            max_ns: max.as_nanos(),
        }
    }
}

impl RequestHandler for PayloadSleepHandler {
    fn handle(&mut self, _ty: TypeId, payload: &mut [u8], request_len: usize) -> usize {
        let ns = if request_len >= 8 {
            u64::from_le_bytes(payload[..8].try_into().expect("sliced to 8 bytes"))
        } else {
            0
        };
        let ns = ns.min(self.max_ns);
        if ns > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(ns));
        }
        0
    }
}

/// Text protocol for [`KvHandler`] request payloads:
///
/// ```text
/// GET <key>
/// PUT <key> <value>
/// DEL <key>
/// SCAN <start> <count>
/// ```
///
/// Responses: `V <value>` / `N` (not found) / `OK` / `C <count>` /
/// `E <message>`.
pub struct KvHandler {
    db: Arc<Mutex<KvStore>>,
}

impl KvHandler {
    /// Creates a handler over a shared store.
    pub fn new(db: Arc<Mutex<KvStore>>) -> Self {
        KvHandler { db }
    }

    fn respond(payload: &mut [u8], resp: &[u8]) -> usize {
        let n = resp.len().min(payload.len());
        payload[..n].copy_from_slice(&resp[..n]);
        n
    }
}

impl RequestHandler for KvHandler {
    fn handle(&mut self, _ty: TypeId, payload: &mut [u8], request_len: usize) -> usize {
        let req = payload[..request_len].to_vec();
        let text = match core::str::from_utf8(&req) {
            Ok(t) => t,
            Err(_) => return Self::respond(payload, b"E not utf8"),
        };
        let mut parts = text.split_whitespace();
        let resp: Vec<u8> = match (parts.next(), parts.next(), parts.next()) {
            (Some("GET"), Some(key), None) => match self.db.lock().unwrap().get(key.as_bytes()) {
                Some(v) => {
                    let mut r = b"V ".to_vec();
                    r.extend_from_slice(&v);
                    r
                }
                None => b"N".to_vec(),
            },
            (Some("PUT"), Some(key), Some(value)) => {
                self.db
                    .lock()
                    .unwrap()
                    .put(key.as_bytes(), value.as_bytes());
                b"OK".to_vec()
            }
            (Some("DEL"), Some(key), None) => {
                self.db.lock().unwrap().delete(key.as_bytes());
                b"OK".to_vec()
            }
            (Some("SCAN"), Some(start), Some(count)) => match count.parse::<usize>() {
                Ok(n) => {
                    let got = self.db.lock().unwrap().scan(start.as_bytes(), n);
                    format!("C {}", got.len()).into_bytes()
                }
                Err(_) => b"E bad count".to_vec(),
            },
            _ => b"E bad request".to_vec(),
        };
        Self::respond(payload, &resp)
    }
}

/// TPC-C handler: the request type selects the transaction; inputs are
/// generated per worker (the paper replays profiled transactions, so the
/// payload carries no arguments).
pub struct TpccHandler {
    db: Arc<Mutex<TpccDb>>,
    gen: TpccInputGen,
}

impl TpccHandler {
    /// Creates a handler over a shared database with a per-worker seed.
    pub fn new(db: Arc<Mutex<TpccDb>>, seed: u64) -> Self {
        TpccHandler {
            db,
            gen: TpccInputGen::new(seed),
        }
    }
}

impl RequestHandler for TpccHandler {
    fn handle(&mut self, ty: TypeId, payload: &mut [u8], _request_len: usize) -> usize {
        let tx = if ty.is_unknown() {
            None
        } else {
            Transaction::from_type_id(ty.index() as u32)
        };
        let resp: &[u8] = match tx {
            Some(tx) => {
                let result = self.db.lock().unwrap().run(tx, &mut self.gen);
                match result {
                    Ok(()) => b"OK",
                    Err(_) => b"E tx failed",
                }
            }
            None => b"E bad tx",
        };
        KvHandler::respond(payload, resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn spin_handler_burns_roughly_the_requested_time() {
        let cal = SpinCalibration::calibrate();
        let mut h = SpinHandler::new(cal, &[Nanos::from_micros(200)]);
        let mut buf = [0u8; 4];
        let start = std::time::Instant::now();
        h.handle(TypeId::new(0), &mut buf, 0);
        let took = start.elapsed().as_micros();
        assert!(took >= 50, "200 µs spin finished in {took} µs");
    }

    #[test]
    fn sleep_handler_sleeps_roughly_the_requested_time_and_clamps() {
        let mut h = PayloadSleepHandler::new(Nanos::from_micros(500));
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&2_000_000u64.to_le_bytes()); // asks for 2 ms
        let start = std::time::Instant::now();
        h.handle(TypeId::new(0), &mut buf, 8);
        let took = start.elapsed();
        assert!(took >= Duration::from_micros(400), "slept at least ~500 µs");
        assert!(took < Duration::from_millis(50), "clamped well below 2 ms");
        // A short payload means zero demand: no sleep at all.
        let start = std::time::Instant::now();
        h.handle(TypeId::new(0), &mut buf, 4);
        assert!(start.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn spin_handler_falls_back_for_unknown_types() {
        let mut h = SpinHandler::new(SpinCalibration::fixed(0.0), &[Nanos::ZERO]);
        let mut buf = [0u8; 4];
        assert_eq!(h.handle(TypeId::UNKNOWN, &mut buf, 0), 0);
        assert_eq!(h.handle(TypeId::new(9), &mut buf, 0), 0);
    }

    fn kv() -> KvHandler {
        KvHandler::new(Arc::new(Mutex::new(KvStore::new())))
    }

    fn call(h: &mut dyn RequestHandler, req: &[u8]) -> Vec<u8> {
        let mut buf = vec![0u8; 256];
        buf[..req.len()].copy_from_slice(req);
        let n = h.handle(TypeId::new(0), &mut buf, req.len());
        buf[..n].to_vec()
    }

    #[test]
    fn kv_handler_full_protocol() {
        let mut h = kv();
        assert_eq!(call(&mut h, b"GET k"), b"N");
        assert_eq!(call(&mut h, b"PUT k v1"), b"OK");
        assert_eq!(call(&mut h, b"GET k"), b"V v1");
        assert_eq!(call(&mut h, b"DEL k"), b"OK");
        assert_eq!(call(&mut h, b"GET k"), b"N");
        assert_eq!(call(&mut h, b"PUT a 1"), b"OK");
        assert_eq!(call(&mut h, b"PUT b 2"), b"OK");
        assert_eq!(call(&mut h, b"SCAN a 10"), b"C 2");
    }

    #[test]
    fn kv_handler_rejects_malformed_requests() {
        let mut h = kv();
        assert_eq!(call(&mut h, b"NOPE"), b"E bad request");
        assert_eq!(call(&mut h, b"GET"), b"E bad request");
        assert_eq!(call(&mut h, b"SCAN a notanumber"), b"E bad count");
        assert_eq!(call(&mut h, &[0xFF, 0xFE]), b"E not utf8");
    }

    #[test]
    fn kv_handler_truncates_oversized_responses() {
        let db = Arc::new(Mutex::new(KvStore::new()));
        db.lock().unwrap().put(b"k", &[b'x'; 100]);
        let mut h = KvHandler::new(db);
        let mut buf = vec![0u8; 8];
        let req = b"GET k";
        buf[..req.len()].copy_from_slice(req);
        let n = h.handle(TypeId::new(0), &mut buf, req.len());
        assert_eq!(n, 8, "response clamped to the buffer");
    }

    #[test]
    fn tpcc_handler_runs_transactions_by_type() {
        let db = Arc::new(Mutex::new(TpccDb::new(1)));
        let mut h = TpccHandler::new(db.clone(), 7);
        let mut buf = vec![0u8; 32];
        for t in Transaction::ALL {
            let n = h.handle(TypeId::new(t.type_id()), &mut buf, 0);
            assert_eq!(&buf[..n], b"OK");
        }
        assert_eq!(db.lock().unwrap().committed(), 5);
        let n = h.handle(TypeId::UNKNOWN, &mut buf, 0);
        assert_eq!(&buf[..n], b"E bad tx");
    }
}
