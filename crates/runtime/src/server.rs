//! Server assembly: spawns the dispatch plane and worker threads and
//! wires the rings between them (paper Figure 2).
//!
//! The dispatch plane is **sharded**: [`ServerBuilder::shards`] splits the
//! server into `K` independent dispatchers, each owning a disjoint slice
//! of the workers and its own scheduling engine, fed by one RX queue of a
//! multi-queue [`ServerPort`] (see `persephone_net::nic::Steering` for
//! how clients spread requests across queues). `K = 1` reproduces the
//! paper's single-dispatcher deployment exactly.
//!
//! Which engine the shards run is picked by [`ServerBuilder::policy`]
//! (default [`Policy::Darc`]). Every live policy of the paper's Table 5 —
//! d-FCFS, c-FCFS, FP, SJF, DARC-static, DARC — maps onto a concrete
//! [`ScheduleEngine`] type, and each policy monomorphizes its own copy of
//! the dispatcher loop, so no per-packet dynamic dispatch is introduced.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use persephone_core::classifier::Classifier;
use persephone_core::dispatch::{
    CfcfsEngine, DarcEngine, DfcfsEngine, EngineConfig, EngineMode, FixedPriorityEngine,
    ScheduleEngine, SjfEngine,
};
use persephone_core::policy::Policy;
use persephone_core::reserve::Reservation;
use persephone_core::time::Nanos;
use persephone_core::types::TypeId;
use persephone_net::nic::{self, ClientPort, ServerPort, Steering};
use persephone_net::spsc;
use persephone_net::udp::{self, UdpConfig};
use persephone_telemetry::{Telemetry, TelemetryConfig};

use crate::clock::RuntimeClock;
use crate::dispatcher::{run_dispatcher, DispatcherReport, Pending};
use crate::fault::FaultPlan;
use crate::handler::RequestHandler;
use crate::messages::{Completion, WorkMsg};
use crate::worker::{run_worker, WorkerReport};

/// Server construction parameters.
///
/// Retained as the config carrier for the deprecated [`spawn`] entry
/// point; new code should use [`ServerBuilder`] directly.
pub struct ServerConfig {
    /// Number of application worker threads.
    pub workers: usize,
    /// Number of registered request types.
    pub num_types: usize,
    /// Optional per-type service-time hints (skips the c-FCFS warm-up when
    /// all are present).
    pub hints: Vec<Option<Nanos>>,
    /// DARC engine configuration (mode, profiler, reservation, queues).
    pub engine: EngineConfig,
    /// Depth of each dispatcher↔worker ring.
    pub ring_depth: usize,
    /// Fault injection for chaos runs (default: none).
    pub faults: FaultPlan,
}

impl ServerConfig {
    /// A dynamic-DARC server with paper-default parameters.
    pub fn darc(workers: usize, num_types: usize) -> Self {
        ServerConfig {
            workers,
            num_types,
            hints: vec![None; num_types],
            engine: EngineConfig::darc(workers),
            ring_depth: 8,
            faults: FaultPlan::none(),
        }
    }

    /// Sets service-time hints (one per type).
    pub fn with_hints(mut self, hints: Vec<Option<Nanos>>) -> Self {
        self.hints = hints;
        self
    }

    /// Installs a fault plan for chaos runs.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

/// Which wire [`ServerBuilder::start`] puts the server on.
///
/// The transport only decides how packets reach the dispatcher shards;
/// scheduling, workers, and telemetry are identical on both. With
/// [`Transport::Udp`] the port in the given address is the *base* port:
/// shard `i` binds `base + i` (port 0 binds every shard ephemerally —
/// read the actual sockets back from [`BoundTransport::Udp`]).
#[derive(Clone, Copy, Debug)]
pub enum Transport {
    /// In-process loopback rings ([`nic::loopback_mq`] with RSS steering
    /// and paper-default ring depth). For custom steering or fault
    /// injection build the port yourself and use [`ServerBuilder::spawn`].
    Loopback,
    /// One nonblocking UDP socket per dispatcher shard, rooted at this
    /// address (see [`udp::server`]).
    Udp(std::net::SocketAddr),
}

/// What [`ServerBuilder::start`] bound: the client half of the chosen
/// [`Transport`].
pub enum BoundTransport {
    /// The loopback [`ClientPort`] wired to the server's RX queues.
    Loopback(ClientPort),
    /// The per-shard socket addresses a remote client (e.g.
    /// `loadgen --connect`) should send to, in shard order.
    Udp(Vec<std::net::SocketAddr>),
}

/// NIC-ring depth [`ServerBuilder::start`] uses for
/// [`Transport::Loopback`] (distinct from the dispatcher↔worker
/// [`ServerBuilder::ring_depth`], which stays a builder knob).
const LOOPBACK_NIC_DEPTH: usize = 256;

/// Where shard classifiers come from.
enum ClassifierSource {
    /// One classifier instance; only valid for a single-shard server.
    Single(Box<dyn Classifier>),
    /// Builds shard `s`'s classifier (each dispatcher thread owns its own).
    Factory(Box<dyn Fn(usize) -> Box<dyn Classifier>>),
}

type HandlerFactory = Box<dyn Fn(usize) -> Box<dyn RequestHandler>>;

/// Typed builder for a Perséphone server.
///
/// Replaces the old four-positional-argument [`spawn`] free function:
/// every optional knob has a named method and a paper-default value, and
/// sharding (`K > 1` dispatchers) is only reachable through the builder.
///
/// ```no_run
/// use persephone_core::classifier::HeaderClassifier;
/// use persephone_core::time::Nanos;
/// use persephone_net::{nic, wire};
/// use persephone_runtime::handler::SpinHandler;
/// use persephone_runtime::server::ServerBuilder;
/// use persephone_store::spin::SpinCalibration;
///
/// let (_client, server) = nic::loopback(256);
/// let cal = SpinCalibration::calibrate();
/// let handle = ServerBuilder::new(4, 2)
///     .classifier(HeaderClassifier::new(wire::TYPE_OFFSET, 2))
///     .handler_factory(move |_| {
///         Box::new(SpinHandler::new(cal, &[Nanos::from_micros(1)]))
///     })
///     .spawn(server);
/// let report = handle.stop();
/// # let _ = report;
/// ```
pub struct ServerBuilder {
    workers: usize,
    num_types: usize,
    hints: Vec<Option<Nanos>>,
    engine: EngineConfig,
    policy: Option<Policy>,
    ring_depth: usize,
    faults: FaultPlan,
    shards: usize,
    classifier: Option<ClassifierSource>,
    handler_factory: Option<HandlerFactory>,
    transport: Transport,
}

impl ServerBuilder {
    /// A dynamic-DARC server with `workers` worker threads, `num_types`
    /// request types, and paper-default parameters (one dispatcher shard,
    /// no hints, no faults, ring depth 8).
    pub fn new(workers: usize, num_types: usize) -> Self {
        ServerBuilder {
            workers,
            num_types,
            hints: vec![None; num_types],
            engine: EngineConfig::darc(workers),
            policy: None,
            ring_depth: 8,
            faults: FaultPlan::none(),
            shards: 1,
            classifier: None,
            handler_factory: None,
            transport: Transport::Loopback,
        }
    }

    /// Seeds the builder from a [`ServerConfig`] (compatibility path for
    /// the deprecated [`spawn`] wrapper).
    pub fn from_config(cfg: ServerConfig) -> Self {
        ServerBuilder {
            workers: cfg.workers,
            num_types: cfg.num_types,
            hints: cfg.hints,
            engine: cfg.engine,
            policy: None,
            ring_depth: cfg.ring_depth,
            faults: cfg.faults,
            shards: 1,
            classifier: None,
            handler_factory: None,
            transport: Transport::Loopback,
        }
    }

    /// Selects the wire [`ServerBuilder::start`] binds (default
    /// [`Transport::Loopback`]). Ignored by [`ServerBuilder::spawn`],
    /// which takes an explicit port.
    pub fn transport(mut self, transport: Transport) -> Self {
        self.transport = transport;
        self
    }

    /// Selects the scheduling policy all dispatcher shards run (default
    /// [`Policy::Darc`]).
    ///
    /// Every live policy maps onto a concrete [`ScheduleEngine`]:
    /// [`Policy::Darc`] and [`Policy::DarcStatic`] run [`DarcEngine`],
    /// [`Policy::CFcfs`] runs [`CfcfsEngine`], [`Policy::Sjf`] runs
    /// [`SjfEngine`], [`Policy::FixedPriority`] runs
    /// [`FixedPriorityEngine`], and [`Policy::DFcfs`] runs
    /// [`DfcfsEngine`]. The dispatcher loop is monomorphized per engine
    /// type, so policy selection costs nothing per packet.
    ///
    /// [`ServerBuilder::spawn`] panics for [`Policy::TimeSharing`]: it
    /// requires preempting a running request, which the
    /// run-to-completion runtime cannot do (`Policy::runs_live` is
    /// `false`; it stays simulator-only).
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Sets per-type service-time hints (one per type; `Some` for all
    /// types skips the c-FCFS warm-up).
    pub fn hints(mut self, hints: Vec<Option<Nanos>>) -> Self {
        self.hints = hints;
        self
    }

    /// Installs a fault plan for chaos runs.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Splits the dispatch plane into `shards` independent dispatchers,
    /// each owning a disjoint worker slice and one RX queue of the
    /// server port. Requires a multi-queue port with exactly this many
    /// queues and a [`ServerBuilder::classifier_factory`].
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the depth of each dispatcher↔worker ring.
    pub fn ring_depth(mut self, depth: usize) -> Self {
        self.ring_depth = depth;
        self
    }

    /// Replaces the whole engine configuration.
    pub fn engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Tweaks the engine configuration in place (profiler windows, queue
    /// capacities, overload control, reservation tuning, …).
    pub fn tune_engine(mut self, f: impl FnOnce(&mut EngineConfig)) -> Self {
        f(&mut self.engine);
        self
    }

    /// Sets the request classifier (single-shard servers only; sharded
    /// servers need one classifier per dispatcher thread, see
    /// [`ServerBuilder::classifier_factory`]).
    pub fn classifier(mut self, classifier: impl Classifier + 'static) -> Self {
        self.classifier = Some(ClassifierSource::Single(Box::new(classifier)));
        self
    }

    /// Sets an already-boxed classifier (compatibility path for the
    /// deprecated [`spawn`] wrapper).
    pub fn boxed_classifier(mut self, classifier: Box<dyn Classifier>) -> Self {
        self.classifier = Some(ClassifierSource::Single(classifier));
        self
    }

    /// Sets a per-shard classifier factory: `f(s)` builds dispatcher
    /// shard `s`'s classifier. Required when `shards > 1`.
    pub fn classifier_factory(
        mut self,
        f: impl Fn(usize) -> Box<dyn Classifier> + 'static,
    ) -> Self {
        self.classifier = Some(ClassifierSource::Factory(Box::new(f)));
        self
    }

    /// Sets the handler factory: `f(g)` builds worker `g`'s application
    /// handler (`g` is the *global* worker index, stable across shard
    /// counts).
    pub fn handler_factory(
        mut self,
        f: impl Fn(usize) -> Box<dyn RequestHandler> + 'static,
    ) -> Self {
        self.handler_factory = Some(Box::new(f));
        self
    }

    /// Spawns the server on `port`.
    ///
    /// # Panics
    ///
    /// Panics if no classifier or handler factory was set, if
    /// `workers == 0`, `shards == 0`, `workers < shards`, the hint arity
    /// mismatches `num_types`, the port's queue count differs from the
    /// shard count, or `shards > 1` with a single (non-factory)
    /// classifier. Also panics for [`Policy::TimeSharing`] (preemptive,
    /// simulator-only) and for [`Policy::DarcStatic`] without any
    /// service-time hint (the shortest type is undefined).
    pub fn spawn(self, port: ServerPort) -> ServerHandle {
        // Resolve the effective policy: an explicit `.policy(...)` wins;
        // otherwise the legacy `EngineConfig::cfcfs()` mode still selects
        // c-FCFS, and everything else defaults to DARC.
        #[allow(deprecated)]
        let legacy_cfcfs = matches!(self.engine.mode, EngineMode::CFcfs);
        let policy = match self.policy.clone() {
            Some(p) => p,
            None if legacy_cfcfs => Policy::CFcfs,
            None => Policy::Darc,
        };
        match policy {
            Policy::Darc => self.spawn_with(port, |mut cfg, nt, hints| {
                // A leftover legacy c-FCFS mode would contradict the
                // explicit DARC request; run full dynamic DARC instead.
                #[allow(deprecated)]
                if matches!(cfg.mode, EngineMode::CFcfs) {
                    cfg.mode = EngineMode::Dynamic;
                }
                DarcEngine::new(cfg, nt, hints)
            }),
            Policy::DarcStatic { reserved_short } => {
                self.spawn_with(port, move |cfg, nt, hints| {
                    let short = hints
                        .iter()
                        .enumerate()
                        .filter_map(|(i, h)| h.map(|n| (n, i)))
                        .min()
                        .map(|(_, i)| i)
                        .expect(
                            "Policy::DarcStatic needs service-time hints to \
                             find the shortest type",
                        );
                    let res = Reservation::two_class_static(
                        nt,
                        cfg.num_workers,
                        TypeId::new(short as u32),
                        reserved_short,
                    );
                    let cfg = EngineConfig {
                        mode: EngineMode::Static(res),
                        ..cfg
                    };
                    DarcEngine::new(cfg, nt, hints)
                })
            }
            Policy::CFcfs => self.spawn_with(port, CfcfsEngine::new),
            Policy::Sjf => self.spawn_with(port, SjfEngine::new),
            Policy::FixedPriority => self.spawn_with(port, FixedPriorityEngine::new),
            Policy::DFcfs => self.spawn_with(port, DfcfsEngine::new),
            Policy::TimeSharing(_) => panic!(
                "Policy::TimeSharing is preemptive and therefore simulator-only; \
                 the threaded runtime runs requests to completion (see the \
                 policy matrix in DESIGN.md)"
            ),
        }
    }

    /// Binds the configured [`Transport`] and spawns the server on it,
    /// returning the handle plus the client half of the wire: a loopback
    /// [`ClientPort`], or the per-shard socket addresses a remote load
    /// generator should target.
    ///
    /// This is [`ServerBuilder::spawn`] with the port built for you —
    /// switching an in-process experiment to real sockets is one
    /// [`ServerBuilder::transport`] call, zero dispatcher changes.
    ///
    /// # Errors
    ///
    /// Returns the bind error if a UDP shard socket cannot be created.
    ///
    /// # Panics
    ///
    /// As [`ServerBuilder::spawn`].
    pub fn start(self) -> std::io::Result<(ServerHandle, BoundTransport)> {
        match self.transport {
            Transport::Loopback => {
                let (client, server) =
                    nic::loopback_mq(LOOPBACK_NIC_DEPTH, self.shards, Steering::Rss);
                Ok((self.spawn(server), BoundTransport::Loopback(client)))
            }
            Transport::Udp(addr) => {
                let port = udp::server(addr, self.shards, UdpConfig::default())?;
                let addrs = port
                    .local_addrs()
                    .expect("a UDP server port always knows its socket addresses");
                Ok((self.spawn(port), BoundTransport::Udp(addrs)))
            }
        }
    }

    /// Spawns the server with `make(cfg, num_types, hints)` building each
    /// shard's engine. Generic over the engine type so every policy's
    /// dispatcher loop monomorphizes.
    fn spawn_with<E>(
        self,
        port: ServerPort,
        make: impl Fn(EngineConfig, usize, &[Option<Nanos>]) -> E,
    ) -> ServerHandle
    where
        E: ScheduleEngine<Pending> + 'static,
    {
        assert!(self.workers > 0, "server needs at least one worker");
        assert!(self.shards > 0, "server needs at least one shard");
        assert!(
            self.workers >= self.shards,
            "need at least one worker per shard ({} workers, {} shards)",
            self.workers,
            self.shards
        );
        assert_eq!(
            self.hints.len(),
            self.num_types,
            "hint arity mismatches num_types"
        );
        assert_eq!(
            port.num_queues(),
            self.shards,
            "port has {} RX queues but the server has {} shards; build the \
             port with nic::loopback_mq(depth, shards, steering)",
            port.num_queues(),
            self.shards
        );
        let classifier = self.classifier.expect("ServerBuilder: classifier not set");
        if self.shards > 1 && matches!(classifier, ClassifierSource::Single(_)) {
            panic!(
                "a sharded server needs one classifier per dispatcher; use \
                 .classifier_factory(|shard| ...) instead of .classifier(...)"
            );
        }
        let handler_factory = self
            .handler_factory
            .expect("ServerBuilder: handler_factory not set");

        let clock = RuntimeClock::start();
        let shutdown = Arc::new(AtomicBool::new(false));
        let shard_ports = port.split();

        // Contiguous worker partition: shard s owns global workers
        // [offset, offset + n_s), with the remainder spread over the
        // first shards so counts differ by at most one.
        let base = self.workers / self.shards;
        let rem = self.workers % self.shards;
        let mut offset = 0usize;

        let (mut single, factory) = match classifier {
            ClassifierSource::Single(c) => (Some(c), None),
            ClassifierSource::Factory(f) => (None, Some(f)),
        };

        let mut shards = Vec::with_capacity(self.shards);
        for (s, shard_port) in shard_ports.into_iter().enumerate() {
            let n_s = base + usize::from(s < rem);
            let mut engine_cfg = self.engine.clone();
            engine_cfg.num_workers = n_s;
            let mut engine = make(engine_cfg, self.num_types, &self.hints);
            let telemetry = Arc::new(Telemetry::new(TelemetryConfig::new(self.num_types, n_s)));
            engine.set_telemetry(telemetry.clone());

            let mut work_tx = Vec::with_capacity(n_s);
            let mut completion_rx = Vec::with_capacity(n_s);
            let mut workers = Vec::with_capacity(n_s);
            for local in 0..n_s {
                let g = offset + local;
                let (wtx, wrx) = spsc::channel::<WorkMsg>(self.ring_depth);
                let (ctx_tx, crx) = spsc::channel::<Completion>(self.ring_depth);
                work_tx.push(wtx);
                completion_rx.push(crx);
                let nic_ctx = shard_port.context();
                let handler = handler_factory(g);
                let tel = Some((local, telemetry.clone()));
                let fault = self.faults.for_worker(g);
                workers.push(
                    std::thread::Builder::new()
                        .name(format!("psp-worker-{g}"))
                        .spawn(move || run_worker(wrx, ctx_tx, nic_ctx, handler, tel, fault))
                        .expect("spawn worker"),
                );
            }
            offset += n_s;

            let shard_classifier = match &factory {
                Some(f) => f(s),
                None => single.take().expect("single classifier consumed twice"),
            };
            let dispatcher_ctx = shard_port.context();
            let flag = shutdown.clone();
            let dispatcher = std::thread::Builder::new()
                .name(format!("psp-dispatcher-{s}"))
                .spawn(move || {
                    run_dispatcher(
                        shard_port,
                        dispatcher_ctx,
                        shard_classifier,
                        engine,
                        work_tx,
                        completion_rx,
                        flag,
                        clock,
                    )
                })
                .expect("spawn dispatcher");
            shards.push(ShardThreads {
                dispatcher,
                workers,
            });
        }

        ServerHandle { shutdown, shards }
    }
}

/// One shard's threads, joined together on shutdown.
struct ShardThreads {
    dispatcher: JoinHandle<DispatcherReport>,
    workers: Vec<JoinHandle<WorkerReport>>,
}

/// A running server; `stop` for an orderly drain and join.
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    shards: Vec<ShardThreads>,
}

/// Aggregated reports after shutdown.
#[derive(Clone, Debug)]
pub struct RuntimeReport {
    /// Server-wide dispatcher view: per-shard reports folded through
    /// [`DispatcherReport::merged`].
    pub dispatcher: DispatcherReport,
    /// Per-shard dispatcher reports, in shard order (one entry for an
    /// unsharded server).
    pub shards: Vec<DispatcherReport>,
    /// Per-worker reports, in global worker order.
    pub workers: Vec<WorkerReport>,
}

impl RuntimeReport {
    /// Total requests handled across workers.
    pub fn handled(&self) -> u64 {
        self.workers.iter().map(|w| w.handled).sum()
    }
}

impl ServerHandle {
    /// Requests an orderly shutdown, waits for the pipeline to drain, and
    /// returns the aggregated reports.
    pub fn stop(self) -> RuntimeReport {
        self.shutdown.store(true, Ordering::Release);
        let mut shards = Vec::with_capacity(self.shards.len());
        let mut workers = Vec::new();
        for shard in self.shards {
            shards.push(shard.dispatcher.join().expect("dispatcher panicked"));
            for w in shard.workers {
                workers.push(w.join().expect("worker panicked"));
            }
        }
        RuntimeReport {
            dispatcher: DispatcherReport::merged(&shards),
            shards,
            workers,
        }
    }
}

/// Spawns a Perséphone server on `port`.
///
/// `handler_factory(i)` builds worker `i`'s application handler.
///
/// # Panics
///
/// Panics if `cfg.workers == 0` or the hint arity mismatches.
#[deprecated(
    since = "0.2.0",
    note = "use ServerBuilder::new(..).classifier(..).handler_factory(..).spawn(port)"
)]
pub fn spawn(
    cfg: ServerConfig,
    port: ServerPort,
    classifier: Box<dyn Classifier>,
    handler_factory: impl Fn(usize) -> Box<dyn RequestHandler> + 'static,
) -> ServerHandle {
    ServerBuilder::from_config(cfg)
        .boxed_classifier(classifier)
        .handler_factory(handler_factory)
        .spawn(port)
}
