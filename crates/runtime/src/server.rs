//! Server assembly: spawns the dispatcher and worker threads and wires
//! the rings between them (paper Figure 2).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use persephone_core::classifier::Classifier;
use persephone_core::dispatch::{DarcEngine, EngineConfig};
use persephone_core::time::Nanos;
use persephone_net::nic::ServerPort;
use persephone_net::spsc;
use persephone_telemetry::{Telemetry, TelemetryConfig};

use crate::clock::RuntimeClock;
use crate::dispatcher::{run_dispatcher, DispatcherReport, Pending};
use crate::fault::FaultPlan;
use crate::handler::RequestHandler;
use crate::messages::{Completion, WorkMsg};
use crate::worker::{run_worker, WorkerReport};

/// Server construction parameters.
pub struct ServerConfig {
    /// Number of application worker threads.
    pub workers: usize,
    /// Number of registered request types.
    pub num_types: usize,
    /// Optional per-type service-time hints (skips the c-FCFS warm-up when
    /// all are present).
    pub hints: Vec<Option<Nanos>>,
    /// DARC engine configuration (mode, profiler, reservation, queues).
    pub engine: EngineConfig,
    /// Depth of each dispatcher↔worker ring.
    pub ring_depth: usize,
    /// Fault injection for chaos runs (default: none).
    pub faults: FaultPlan,
}

impl ServerConfig {
    /// A dynamic-DARC server with paper-default parameters.
    pub fn darc(workers: usize, num_types: usize) -> Self {
        ServerConfig {
            workers,
            num_types,
            hints: vec![None; num_types],
            engine: EngineConfig::darc(workers),
            ring_depth: 8,
            faults: FaultPlan::none(),
        }
    }

    /// Sets service-time hints (one per type).
    pub fn with_hints(mut self, hints: Vec<Option<Nanos>>) -> Self {
        self.hints = hints;
        self
    }

    /// Installs a fault plan for chaos runs.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

/// A running server; `stop` for an orderly drain and join.
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    dispatcher: JoinHandle<DispatcherReport>,
    workers: Vec<JoinHandle<WorkerReport>>,
}

/// Aggregated reports after shutdown.
#[derive(Clone, Debug)]
pub struct RuntimeReport {
    /// The dispatcher's counters and final reservation.
    pub dispatcher: DispatcherReport,
    /// Per-worker reports.
    pub workers: Vec<WorkerReport>,
}

impl RuntimeReport {
    /// Total requests handled across workers.
    pub fn handled(&self) -> u64 {
        self.workers.iter().map(|w| w.handled).sum()
    }
}

/// Spawns a Perséphone server on `port`.
///
/// `handler_factory(i)` builds worker `i`'s application handler.
///
/// # Panics
///
/// Panics if `cfg.workers == 0` or the hint arity mismatches.
pub fn spawn(
    cfg: ServerConfig,
    port: ServerPort,
    classifier: Box<dyn Classifier>,
    handler_factory: impl Fn(usize) -> Box<dyn RequestHandler>,
) -> ServerHandle {
    assert!(cfg.workers > 0);
    let mut engine_cfg = cfg.engine;
    engine_cfg.num_workers = cfg.workers;
    engine_cfg.reserve.num_workers = cfg.workers;
    let mut engine: DarcEngine<Pending> = DarcEngine::new(engine_cfg, cfg.num_types, &cfg.hints);
    let telemetry = Arc::new(Telemetry::new(TelemetryConfig::new(
        cfg.num_types,
        cfg.workers,
    )));
    engine.set_telemetry(telemetry.clone());

    let clock = RuntimeClock::start();
    let shutdown = Arc::new(AtomicBool::new(false));

    let mut work_tx = Vec::with_capacity(cfg.workers);
    let mut completion_rx = Vec::with_capacity(cfg.workers);
    let mut workers = Vec::with_capacity(cfg.workers);
    for i in 0..cfg.workers {
        let (wtx, wrx) = spsc::channel::<WorkMsg>(cfg.ring_depth);
        let (ctx_tx, crx) = spsc::channel::<Completion>(cfg.ring_depth);
        work_tx.push(wtx);
        completion_rx.push(crx);
        let nic_ctx = port.context();
        let handler = handler_factory(i);
        let tel = Some((i, telemetry.clone()));
        let fault = cfg.faults.for_worker(i);
        workers.push(
            std::thread::Builder::new()
                .name(format!("psp-worker-{i}"))
                .spawn(move || run_worker(wrx, ctx_tx, nic_ctx, handler, tel, fault))
                .expect("spawn worker"),
        );
    }

    let dispatcher_ctx = port.context();
    let flag = shutdown.clone();
    let dispatcher = std::thread::Builder::new()
        .name("psp-dispatcher".into())
        .spawn(move || {
            run_dispatcher(
                port,
                dispatcher_ctx,
                classifier,
                engine,
                work_tx,
                completion_rx,
                flag,
                clock,
            )
        })
        .expect("spawn dispatcher");

    ServerHandle {
        shutdown,
        dispatcher,
        workers,
    }
}

impl ServerHandle {
    /// Requests an orderly shutdown, waits for the pipeline to drain, and
    /// returns the aggregated reports.
    pub fn stop(self) -> RuntimeReport {
        self.shutdown.store(true, Ordering::Release);
        let dispatcher = self.dispatcher.join().expect("dispatcher panicked");
        let workers = self
            .workers
            .into_iter()
            .map(|w| w.join().expect("worker panicked"))
            .collect();
        RuntimeReport {
            dispatcher,
            workers,
        }
    }
}
