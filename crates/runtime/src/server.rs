//! Server assembly: spawns the dispatch plane and worker threads and
//! wires the rings between them (paper Figure 2).
//!
//! The dispatch plane is **sharded**: [`ServerBuilder::shards`] splits the
//! server into `K` independent dispatchers, each owning a disjoint slice
//! of the workers and its own scheduling engine, fed by one RX queue of a
//! multi-queue [`ServerPort`] (see `persephone_net::nic::Steering` for
//! how clients spread requests across queues). `K = 1` reproduces the
//! paper's single-dispatcher deployment exactly.
//!
//! Which engine the shards run is picked by [`ServerBuilder::policy`]
//! (default [`Policy::Darc`]). Every live policy of the paper's Table 5 —
//! d-FCFS, c-FCFS, FP, SJF, DARC-static, DARC — maps onto a concrete
//! [`ScheduleEngine`] type, and each policy monomorphizes its own copy of
//! the dispatcher loop, so no per-packet dynamic dispatch is introduced.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use persephone_core::classifier::Classifier;
use persephone_core::dispatch::{
    CfcfsEngine, DarcEngine, DfcfsEngine, EngineConfig, EngineMode, FixedPriorityEngine,
    ScheduleEngine, SjfEngine,
};
use persephone_core::policy::Policy;
use persephone_core::reserve::Reservation;
use persephone_core::time::Nanos;
use persephone_core::types::TypeId;
use persephone_net::nic::{self, ClientPort, ServerPort, Steering};
use persephone_net::spsc;
use persephone_net::udp::{self, UdpConfig};
use persephone_telemetry::{Telemetry, TelemetryConfig};

use crate::clock::RuntimeClock;
use crate::dispatcher::{run_dispatcher, DispatcherReport, Pending};
use crate::fault::FaultPlan;
use crate::handler::RequestHandler;
use crate::messages::{Completion, WorkMsg};
use crate::worker::{run_worker, WorkerReport};

/// Which wire [`ServerBuilder::start`] puts the server on.
///
/// The transport only decides how packets reach the dispatcher shards;
/// scheduling, workers, and telemetry are identical on all of them. With
/// [`Transport::Udp`] the port in the given address is the *base* port:
/// shard `i` binds `base + i` (port 0 binds every shard ephemerally —
/// read the actual sockets back from [`BoundTransport::Udp`]).
pub enum Transport {
    /// In-process loopback rings ([`nic::loopback_mq`] with RSS steering
    /// and paper-default ring depth).
    Loopback,
    /// One nonblocking UDP socket per dispatcher shard, rooted at this
    /// address (see [`udp::server`]).
    Udp(std::net::SocketAddr),
    /// A pre-built [`ServerPort`] whose client half the caller already
    /// holds — custom steering ([`Steering::ByType`]), NIC fault plans,
    /// or a hand-rolled depth all come in through here.
    Port(ServerPort),
}

/// What [`ServerBuilder::start`] bound: the client half of the chosen
/// [`Transport`].
pub enum BoundTransport {
    /// The loopback [`ClientPort`] wired to the server's RX queues.
    Loopback(ClientPort),
    /// The per-shard socket addresses a remote client (e.g.
    /// `loadgen --connect`) should send to, in shard order.
    Udp(Vec<std::net::SocketAddr>),
    /// The server ran on a caller-supplied [`Transport::Port`]; the
    /// caller already owns the matching client half.
    External,
}

impl BoundTransport {
    /// Unwraps the loopback client half.
    ///
    /// # Panics
    ///
    /// Panics if the server was started on another transport.
    pub fn into_loopback(self) -> ClientPort {
        match self {
            BoundTransport::Loopback(client) => client,
            BoundTransport::Udp(_) => panic!("server bound UDP sockets, not a loopback port"),
            BoundTransport::External => {
                panic!("server ran on a caller-supplied port; the client half is yours already")
            }
        }
    }

    /// Unwraps the per-shard UDP socket addresses.
    ///
    /// # Panics
    ///
    /// Panics if the server was started on another transport.
    pub fn into_udp_addrs(self) -> Vec<std::net::SocketAddr> {
        match self {
            BoundTransport::Udp(addrs) => addrs,
            BoundTransport::Loopback(_) => panic!("server bound a loopback port, not UDP sockets"),
            BoundTransport::External => {
                panic!("server ran on a caller-supplied port; the client half is yours already")
            }
        }
    }
}

/// NIC-ring depth [`ServerBuilder::start`] uses for
/// [`Transport::Loopback`] (distinct from the dispatcher↔worker
/// [`ServerBuilder::ring_depth`], which stays a builder knob).
const LOOPBACK_NIC_DEPTH: usize = 256;

/// Where shard classifiers come from.
enum ClassifierSource {
    /// One classifier instance; only valid for a single-shard server.
    Single(Box<dyn Classifier>),
    /// Builds shard `s`'s classifier (each dispatcher thread owns its own).
    Factory(Box<dyn Fn(usize) -> Box<dyn Classifier>>),
}

type HandlerFactory = Box<dyn Fn(usize) -> Box<dyn RequestHandler>>;

/// Typed builder for a Perséphone server.
///
/// Every optional knob has a named method and a paper-default value;
/// sharding (`K > 1` dispatchers) and the wire ([`Transport`]) are both
/// builder knobs, and [`ServerBuilder::start`] is the single entry point
/// for every deployment shape — in-process loopback, real UDP sockets,
/// or a caller-supplied port.
///
/// ```no_run
/// use persephone_core::classifier::HeaderClassifier;
/// use persephone_core::time::Nanos;
/// use persephone_net::wire;
/// use persephone_runtime::handler::SpinHandler;
/// use persephone_runtime::server::ServerBuilder;
/// use persephone_store::spin::SpinCalibration;
///
/// let cal = SpinCalibration::calibrate();
/// let (handle, bound) = ServerBuilder::new(4, 2)
///     .classifier(HeaderClassifier::new(wire::TYPE_OFFSET, 2))
///     .handler_factory(move |_| {
///         Box::new(SpinHandler::new(cal, &[Nanos::from_micros(1)]))
///     })
///     .start()
///     .expect("loopback start cannot fail");
/// let _client = bound.into_loopback();
/// let report = handle.stop();
/// # let _ = report;
/// ```
pub struct ServerBuilder {
    workers: usize,
    num_types: usize,
    hints: Vec<Option<Nanos>>,
    engine: EngineConfig,
    policy: Option<Policy>,
    ring_depth: usize,
    faults: FaultPlan,
    shards: usize,
    classifier: Option<ClassifierSource>,
    handler_factory: Option<HandlerFactory>,
    transport: Transport,
    idle_backoff: Option<Duration>,
}

impl ServerBuilder {
    /// A dynamic-DARC server with `workers` worker threads, `num_types`
    /// request types, and paper-default parameters (one dispatcher shard,
    /// no hints, no faults, ring depth 8).
    pub fn new(workers: usize, num_types: usize) -> Self {
        ServerBuilder {
            workers,
            num_types,
            hints: vec![None; num_types],
            engine: EngineConfig::darc(workers),
            policy: None,
            ring_depth: 8,
            faults: FaultPlan::none(),
            shards: 1,
            classifier: None,
            handler_factory: None,
            transport: Transport::Loopback,
            idle_backoff: None,
        }
    }

    /// Selects the wire [`ServerBuilder::start`] binds (default
    /// [`Transport::Loopback`]).
    pub fn transport(mut self, transport: Transport) -> Self {
        self.transport = transport;
        self
    }

    /// Selects the scheduling policy all dispatcher shards run (default
    /// [`Policy::Darc`]).
    ///
    /// Every live policy maps onto a concrete [`ScheduleEngine`]:
    /// [`Policy::Darc`] and [`Policy::DarcStatic`] run [`DarcEngine`],
    /// [`Policy::CFcfs`] runs [`CfcfsEngine`], [`Policy::Sjf`] runs
    /// [`SjfEngine`], [`Policy::FixedPriority`] runs
    /// [`FixedPriorityEngine`], and [`Policy::DFcfs`] runs
    /// [`DfcfsEngine`]. The dispatcher loop is monomorphized per engine
    /// type, so policy selection costs nothing per packet.
    ///
    /// [`ServerBuilder::start`] panics for [`Policy::TimeSharing`]: it
    /// requires preempting a running request, which the
    /// run-to-completion runtime cannot do (`Policy::runs_live` is
    /// `false`; it stays simulator-only).
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Sets per-type service-time hints (one per type; `Some` for all
    /// types skips the c-FCFS warm-up).
    pub fn hints(mut self, hints: Vec<Option<Nanos>>) -> Self {
        self.hints = hints;
        self
    }

    /// Installs a fault plan for chaos runs.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Splits the dispatch plane into `shards` independent dispatchers,
    /// each owning a disjoint worker slice and one RX queue of the
    /// server port. Requires a multi-queue port with exactly this many
    /// queues and a [`ServerBuilder::classifier_factory`].
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the depth of each dispatcher↔worker ring.
    pub fn ring_depth(mut self, depth: usize) -> Self {
        self.ring_depth = depth;
        self
    }

    /// Parks dispatcher and worker threads for `park` per idle iteration
    /// once they have been unproductive for a short yield-spin phase,
    /// instead of busy-yielding forever (the default).
    ///
    /// Busy-yielding gives the lowest wake-up latency and is right when
    /// the server has cores to spare — which is why it stays the default.
    /// But on a machine with fewer cores than server threads (CI, rack
    /// tests running several servers side by side), a pile of always-
    /// runnable idle threads starves the ones with actual work and the
    /// tail measurements drown in scheduler noise. Parking trades up to
    /// `park` (plus OS wake-up latency) of added response time on an idle
    /// server for a quiet machine; with millisecond-scale service times a
    /// 50–100µs park is invisible in the measurements.
    pub fn idle_backoff(mut self, park: Duration) -> Self {
        self.idle_backoff = Some(park);
        self
    }

    /// Replaces the whole engine configuration.
    pub fn engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Tweaks the engine configuration in place (profiler windows, queue
    /// capacities, overload control, reservation tuning, …).
    pub fn tune_engine(mut self, f: impl FnOnce(&mut EngineConfig)) -> Self {
        f(&mut self.engine);
        self
    }

    /// Sets the request classifier (single-shard servers only; sharded
    /// servers need one classifier per dispatcher thread, see
    /// [`ServerBuilder::classifier_factory`]).
    pub fn classifier(mut self, classifier: impl Classifier + 'static) -> Self {
        self.classifier = Some(ClassifierSource::Single(Box::new(classifier)));
        self
    }

    /// Sets a per-shard classifier factory: `f(s)` builds dispatcher
    /// shard `s`'s classifier. Required when `shards > 1`.
    pub fn classifier_factory(
        mut self,
        f: impl Fn(usize) -> Box<dyn Classifier> + 'static,
    ) -> Self {
        self.classifier = Some(ClassifierSource::Factory(Box::new(f)));
        self
    }

    /// Sets the handler factory: `f(g)` builds worker `g`'s application
    /// handler (`g` is the *global* worker index, stable across shard
    /// counts).
    pub fn handler_factory(
        mut self,
        f: impl Fn(usize) -> Box<dyn RequestHandler> + 'static,
    ) -> Self {
        self.handler_factory = Some(Box::new(f));
        self
    }

    /// Spawns the server on an explicit, pre-built `port`.
    ///
    /// Internal engine-selection step of [`ServerBuilder::start`] (which
    /// is the public entry point; `Transport::Port(port)` routes here).
    fn spawn_on(self, port: ServerPort) -> ServerHandle {
        let policy = self.policy.clone().unwrap_or(Policy::Darc);
        match policy {
            Policy::Darc => self.spawn_with(port, DarcEngine::new),
            Policy::DarcStatic { reserved_short } => {
                self.spawn_with(port, move |cfg, nt, hints| {
                    let short = hints
                        .iter()
                        .enumerate()
                        .filter_map(|(i, h)| h.map(|n| (n, i)))
                        .min()
                        .map(|(_, i)| i)
                        .expect(
                            "Policy::DarcStatic needs service-time hints to \
                             find the shortest type",
                        );
                    let res = Reservation::two_class_static(
                        nt,
                        cfg.num_workers,
                        TypeId::new(short as u32),
                        reserved_short,
                    );
                    let cfg = EngineConfig {
                        mode: EngineMode::Static(res),
                        ..cfg
                    };
                    DarcEngine::new(cfg, nt, hints)
                })
            }
            Policy::CFcfs => self.spawn_with(port, CfcfsEngine::new),
            Policy::Sjf => self.spawn_with(port, SjfEngine::new),
            Policy::FixedPriority => self.spawn_with(port, FixedPriorityEngine::new),
            Policy::DFcfs => self.spawn_with(port, DfcfsEngine::new),
            Policy::TimeSharing(_) => panic!(
                "Policy::TimeSharing is preemptive and therefore simulator-only; \
                 the threaded runtime runs requests to completion (see the \
                 policy matrix in DESIGN.md)"
            ),
        }
    }

    /// Binds the configured [`Transport`] and spawns the server on it,
    /// returning the handle plus the client half of the wire: a loopback
    /// [`ClientPort`], the per-shard socket addresses a remote load
    /// generator should target, or [`BoundTransport::External`] when the
    /// caller supplied the port (and therefore already holds its client
    /// half).
    ///
    /// This is the single construction path — single-server and rack
    /// deployments, in-process and real-socket wires all come through
    /// here; switching an in-process experiment to real sockets is one
    /// [`ServerBuilder::transport`] call, zero dispatcher changes.
    ///
    /// # Errors
    ///
    /// Returns the bind error if a UDP shard socket cannot be created.
    ///
    /// # Panics
    ///
    /// Panics if no classifier or handler factory was set, if
    /// `workers == 0`, `shards == 0`, `workers < shards`, the hint arity
    /// mismatches `num_types`, the port's queue count differs from the
    /// shard count, or `shards > 1` with a single (non-factory)
    /// classifier. Also panics for [`Policy::TimeSharing`] (preemptive,
    /// simulator-only) and for [`Policy::DarcStatic`] without any
    /// service-time hint (the shortest type is undefined).
    pub fn start(mut self) -> std::io::Result<(ServerHandle, BoundTransport)> {
        match std::mem::replace(&mut self.transport, Transport::Loopback) {
            Transport::Loopback => {
                let (client, server) =
                    nic::loopback_mq(LOOPBACK_NIC_DEPTH, self.shards, Steering::Rss);
                Ok((self.spawn_on(server), BoundTransport::Loopback(client)))
            }
            Transport::Udp(addr) => {
                let port = udp::server(addr, self.shards, UdpConfig::default())?;
                let addrs = port
                    .local_addrs()
                    .expect("a UDP server port always knows its socket addresses");
                Ok((self.spawn_on(port), BoundTransport::Udp(addrs)))
            }
            Transport::Port(port) => Ok((self.spawn_on(port), BoundTransport::External)),
        }
    }

    /// Spawns the server with `make(cfg, num_types, hints)` building each
    /// shard's engine. Generic over the engine type so every policy's
    /// dispatcher loop monomorphizes.
    fn spawn_with<E>(
        self,
        port: ServerPort,
        make: impl Fn(EngineConfig, usize, &[Option<Nanos>]) -> E,
    ) -> ServerHandle
    where
        E: ScheduleEngine<Pending> + 'static,
    {
        assert!(self.workers > 0, "server needs at least one worker");
        assert!(self.shards > 0, "server needs at least one shard");
        assert!(
            self.workers >= self.shards,
            "need at least one worker per shard ({} workers, {} shards)",
            self.workers,
            self.shards
        );
        assert_eq!(
            self.hints.len(),
            self.num_types,
            "hint arity mismatches num_types"
        );
        assert_eq!(
            port.num_queues(),
            self.shards,
            "port has {} RX queues but the server has {} shards; build the \
             port with nic::loopback_mq(depth, shards, steering)",
            port.num_queues(),
            self.shards
        );
        let classifier = self.classifier.expect("ServerBuilder: classifier not set");
        if self.shards > 1 && matches!(classifier, ClassifierSource::Single(_)) {
            panic!(
                "a sharded server needs one classifier per dispatcher; use \
                 .classifier_factory(|shard| ...) instead of .classifier(...)"
            );
        }
        let handler_factory = self
            .handler_factory
            .expect("ServerBuilder: handler_factory not set");

        let clock = RuntimeClock::start();
        let shutdown = Arc::new(AtomicBool::new(false));
        let shard_ports = port.split();

        // Contiguous worker partition: shard s owns global workers
        // [offset, offset + n_s), with the remainder spread over the
        // first shards so counts differ by at most one.
        let base = self.workers / self.shards;
        let rem = self.workers % self.shards;
        let mut offset = 0usize;

        let (mut single, factory) = match classifier {
            ClassifierSource::Single(c) => (Some(c), None),
            ClassifierSource::Factory(f) => (None, Some(f)),
        };

        let mut shards = Vec::with_capacity(self.shards);
        let mut telemetries = Vec::with_capacity(self.shards);
        for (s, shard_port) in shard_ports.into_iter().enumerate() {
            let n_s = base + usize::from(s < rem);
            let mut engine_cfg = self.engine.clone();
            engine_cfg.num_workers = n_s;
            let mut engine = make(engine_cfg, self.num_types, &self.hints);
            let telemetry = Arc::new(Telemetry::new(TelemetryConfig::new(self.num_types, n_s)));
            engine.set_telemetry(telemetry.clone());
            telemetries.push(telemetry.clone());

            let mut work_tx = Vec::with_capacity(n_s);
            let mut completion_rx = Vec::with_capacity(n_s);
            let mut workers = Vec::with_capacity(n_s);
            for local in 0..n_s {
                let g = offset + local;
                let (wtx, wrx) = spsc::channel::<WorkMsg>(self.ring_depth);
                let (ctx_tx, crx) = spsc::channel::<Completion>(self.ring_depth);
                work_tx.push(wtx);
                completion_rx.push(crx);
                let nic_ctx = shard_port.context();
                let handler = handler_factory(g);
                let tel = Some((local, telemetry.clone()));
                let fault = self.faults.for_worker(g);
                let backoff = self.idle_backoff;
                workers.push(
                    std::thread::Builder::new()
                        .name(format!("psp-worker-{g}"))
                        .spawn(move || {
                            run_worker(wrx, ctx_tx, nic_ctx, handler, tel, fault, backoff)
                        })
                        .expect("spawn worker"),
                );
            }
            offset += n_s;

            let shard_classifier = match &factory {
                Some(f) => f(s),
                None => single.take().expect("single classifier consumed twice"),
            };
            let dispatcher_ctx = shard_port.context();
            let flag = shutdown.clone();
            let backoff = self.idle_backoff;
            let dispatcher = std::thread::Builder::new()
                .name(format!("psp-dispatcher-{s}"))
                .spawn(move || {
                    run_dispatcher(
                        shard_port,
                        dispatcher_ctx,
                        shard_classifier,
                        engine,
                        work_tx,
                        completion_rx,
                        flag,
                        clock,
                        backoff,
                    )
                })
                .expect("spawn dispatcher");
            shards.push(ShardThreads {
                dispatcher,
                workers,
            });
        }

        ServerHandle {
            shutdown,
            shards,
            telemetries,
        }
    }
}

/// One shard's threads, joined together on shutdown.
struct ShardThreads {
    dispatcher: JoinHandle<DispatcherReport>,
    workers: Vec<JoinHandle<WorkerReport>>,
}

/// A running server; `stop` for an orderly drain and join.
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    shards: Vec<ShardThreads>,
    telemetries: Vec<Arc<Telemetry>>,
}

/// Aggregated reports after shutdown.
#[derive(Clone, Debug)]
pub struct RuntimeReport {
    /// Server-wide dispatcher view: per-shard reports folded through
    /// [`DispatcherReport::merged`].
    pub dispatcher: DispatcherReport,
    /// Per-shard dispatcher reports, in shard order (one entry for an
    /// unsharded server).
    pub shards: Vec<DispatcherReport>,
    /// Per-worker reports, in global worker order.
    pub workers: Vec<WorkerReport>,
}

impl RuntimeReport {
    /// Total requests handled across workers.
    pub fn handled(&self) -> u64 {
        self.workers.iter().map(|w| w.handled).sum()
    }
}

impl ServerHandle {
    /// Per-shard telemetry registries, in shard order — a *live* view of
    /// the running server (queue depths, per-type counters, sojourns),
    /// safe to snapshot at any time. A rack steering plane polls these to
    /// feed load estimates (e.g. shortest-expected-delay) without
    /// touching the dispatcher hot path.
    pub fn telemetries(&self) -> &[Arc<Telemetry>] {
        &self.telemetries
    }

    /// Requests an orderly shutdown, waits for the pipeline to drain, and
    /// returns the aggregated reports.
    pub fn stop(self) -> RuntimeReport {
        self.shutdown.store(true, Ordering::Release);
        let mut shards = Vec::with_capacity(self.shards.len());
        let mut workers = Vec::new();
        for shard in self.shards {
            shards.push(shard.dispatcher.join().expect("dispatcher panicked"));
            for w in shard.workers {
                workers.push(w.join().expect("worker panicked"));
            }
        }
        RuntimeReport {
            dispatcher: DispatcherReport::merged(&shards),
            shards,
            workers,
        }
    }
}
