//! The Perséphone dispatcher thread (paper §4.3.3).
//!
//! One thread plays both the net worker and the dispatcher role (the
//! paper colocates them on one hardware thread): it drains the NIC RX
//! queue, classifies requests with the user-provided classifier, pushes
//! them into the scheduling engine's queues, executes the engine's
//! dispatch decisions over per-worker SPSC rings, and folds completion
//! notifications back into the engine (profiling + reservation updates).
//!
//! The loop is generic over `E: ScheduleEngine<Pending>` — the policy
//! (DARC, c-FCFS, SJF, FP, d-FCFS) is a compile-time parameter, so each
//! policy's `poll`/`enqueue` monomorphizes into the hot loop with no
//! virtual dispatch per packet. `ServerBuilder::policy` picks the
//! concrete engine at spawn time.
//!
//! The hot path is batch-oriented: RX packets arrive through
//! [`persephone_net::nic::ServerPort::recv_batch`] and are classified
//! with one timestamp per batch; completions are folded through
//! [`persephone_net::spsc::Consumer::pop_batch`]; control responses for
//! expired and shutdown-shed requests go out through
//! [`persephone_net::nic::NetContext::send_batch`]. In a sharded server
//! (`ServerBuilder::shards`) several of these loops run side by side,
//! each over its own RX queue, worker slice, and engine.
//!
//! ## Overload control
//!
//! Each loop iteration also runs the engine's graceful-degradation
//! machinery: [`ScheduleEngine::check_health`] quarantines workers that
//! have held a request for far longer than the type's profiled mean
//! (DARC re-covers their reserved cores via the spillway), and
//! [`ScheduleEngine::expire_heads`] sheds head-of-queue requests whose
//! queueing delay has already blown the slowdown SLO — those are answered
//! with [`wire::Status::Dropped`] so the client can retry elsewhere
//! instead of waiting on a response that would arrive too late to matter.
//!
//! A dispatch decision whose worker ring is momentarily full is *held*
//! (one slot per worker) and re-offered on the next iteration rather than
//! panicking the dispatcher thread; at shutdown, still-queued requests
//! are drained and answered with `Dropped` instead of silently discarded.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use persephone_core::classifier::Classifier;
use persephone_core::dispatch::ScheduleEngine;
use persephone_core::types::{TypeId, WorkerId};
use persephone_net::nic::{NetContext, ServerPort};
use persephone_net::pool::PacketBuf;
use persephone_net::spsc;
use persephone_net::wire;
use persephone_telemetry::Snapshot;

use crate::clock::RuntimeClock;
use crate::messages::{Completion, WorkMsg};
use crate::worker::IDLE_SPINS_BEFORE_PARK;

/// A queued request: its buffer plus the decoded wire id.
pub type Pending = (PacketBuf, u64);

/// Largest RX burst pulled off the NIC per loop iteration.
const RX_BATCH: usize = 64;

/// Retry budget for each control response (best-effort UDP semantics).
/// Sized against the send-retry backoff ladder: exhausting it against a
/// vanished client costs tens of milliseconds of mostly-sleeping time
/// per packet, so even a shutdown shed burst stays bounded.
const CONTROL_TX_ATTEMPTS: usize = 2_048;

/// Counters and final engine state returned when the dispatcher exits.
#[derive(Clone, Debug, Default)]
pub struct DispatcherReport {
    /// Name of the scheduling policy the engine ran ("DARC", "c-FCFS",
    /// ...). Merged reports take the first shard's name — all shards of
    /// one server run the same policy.
    pub policy: String,
    /// Packets pulled off the NIC.
    pub received: u64,
    /// Requests that decoded and classified to a registered type.
    pub classified: u64,
    /// Requests classified as UNKNOWN (still served, on the spillway).
    pub unknown: u64,
    /// Malformed packets answered with `BadRequest`.
    pub malformed: u64,
    /// Requests shed by typed-queue flow control.
    pub dropped: u64,
    /// Requests pushed to workers.
    pub dispatched: u64,
    /// Completions folded back into the engine.
    pub completed: u64,
    /// Queued requests past their slowdown-SLO deadline, answered with
    /// `Dropped` before ever reaching a worker.
    pub expired: u64,
    /// Requests still queued (or held for a quarantined worker) at
    /// shutdown, answered with `Dropped` instead of silently discarded.
    pub shed_at_shutdown: u64,
    /// Workers quarantined by the wall-clock health check.
    pub quarantines: u64,
    /// Quarantined workers released after their late completion arrived.
    pub releases: u64,
    /// Control responses abandoned after the bounded TX retry gave up.
    pub tx_give_ups: u64,
    /// Reservation updates installed (including the warm-up exit).
    pub reservation_updates: u64,
    /// Final guaranteed (reserved) cores per type.
    pub guaranteed: Vec<usize>,
    /// Telemetry snapshot taken as the dispatcher exits (empty when the
    /// engine has no [`persephone_telemetry::Telemetry`] attached).
    pub telemetry: Snapshot,
}

impl DispatcherReport {
    /// Folds per-shard reports into one server-wide view: counters sum,
    /// per-type guaranteed-core counts sum elementwise (each shard
    /// reserves over its own worker slice), and the telemetry snapshots
    /// merge through [`Snapshot::merge`] — except worker slots, which
    /// are concatenated in shard order because each shard's workers are
    /// a disjoint slice, not copies of the same cores.
    pub fn merged(shards: &[DispatcherReport]) -> DispatcherReport {
        let mut out = DispatcherReport::default();
        for s in shards {
            if out.policy.is_empty() {
                out.policy = s.policy.clone();
            }
            out.received += s.received;
            out.classified += s.classified;
            out.unknown += s.unknown;
            out.malformed += s.malformed;
            out.dropped += s.dropped;
            out.dispatched += s.dispatched;
            out.completed += s.completed;
            out.expired += s.expired;
            out.shed_at_shutdown += s.shed_at_shutdown;
            out.quarantines += s.quarantines;
            out.releases += s.releases;
            out.tx_give_ups += s.tx_give_ups;
            out.reservation_updates += s.reservation_updates;
            if out.guaranteed.len() < s.guaranteed.len() {
                out.guaranteed.resize(s.guaranteed.len(), 0);
            }
            for (i, g) in s.guaranteed.iter().enumerate() {
                out.guaranteed[i] += g;
            }
            let mut tel = s.telemetry.clone();
            let shard_workers = std::mem::take(&mut tel.workers);
            out.telemetry.merge(&tel);
            out.telemetry.workers.extend(shard_workers);
        }
        out
    }
}

/// Runs the dispatcher until `shutdown` is set *and* all in-flight work
/// has drained.
///
/// Generic over the scheduling engine so every policy's hot path
/// monomorphizes — no `dyn` dispatch inside the loop.
///
/// An unproductive iteration yields; with `idle_backoff` set, an
/// iteration that stays unproductive past a short yield-spin phase parks
/// for that long instead — see [`crate::ServerBuilder::idle_backoff`].
#[allow(clippy::too_many_arguments)]
pub fn run_dispatcher<E: ScheduleEngine<Pending>>(
    mut port: ServerPort,
    dispatcher_ctx: NetContext,
    mut classifier: Box<dyn Classifier>,
    mut engine: E,
    mut work_tx: Vec<spsc::Producer<WorkMsg>>,
    mut completion_rx: Vec<spsc::Consumer<Completion>>,
    shutdown: Arc<AtomicBool>,
    clock: RuntimeClock,
    idle_backoff: Option<Duration>,
) -> DispatcherReport {
    // audit:allow(A1): spawn-time wiring check, before the dispatch loop
    assert_eq!(work_tx.len(), engine.num_workers());
    assert_eq!(completion_rx.len(), engine.num_workers());
    let mut report = DispatcherReport::default();
    let num_types = engine.num_types();
    // Dispatch decisions whose worker ring rejected the push, held for
    // re-offer. The one-in-flight-per-worker protocol means at most one
    // held message per worker, so a fixed slot each suffices.
    // audit:allow(A2): spawn-time pre-warm, before the dispatch loop
    let mut held: Vec<Option<WorkMsg>> = (0..engine.num_workers()).map(|_| None).collect();
    // Scratch buffers reused across iterations so the hot path never
    // allocates after the first few batches.
    // audit:allow(A2): spawn-time pre-warm, before the dispatch loop
    let mut rx_batch: Vec<PacketBuf> = Vec::with_capacity(RX_BATCH);
    let mut comp_batch: Vec<Completion> = Vec::new();
    let mut ctrl_batch: Vec<PacketBuf> = Vec::new();
    // audit:allow(A2): spawn-time pre-warm, before the dispatch loop
    let mut drain_buf: Vec<(TypeId, Pending)> = Vec::new();
    let mut idle_spins: u32 = 0;

    loop {
        let mut progressed = false;

        // 0. Re-offer messages held from a previously full worker ring.
        for w in 0..held.len() {
            // audit:allow(A1): w < held.len() == work_tx.len(), by the loop
            // bound and the spawn-time wiring check above
            if let Some(msg) = held[w].take() {
                match work_tx[w].push(msg) {
                    Ok(()) => progressed = true,
                    // audit:allow(A1): same `w < held.len()` bound as above
                    Err(back) => held[w] = Some(back.0),
                }
            }
        }

        // 1. Net-worker role: pull a whole batch off the NIC RX queue,
        // then decode and classify it under one timestamp — the arrival
        // time of the batch, not of each packet, exactly as a real NIC's
        // RX burst would be handled.
        let got = port.recv_batch(&mut rx_batch, RX_BATCH);
        if got > 0 {
            progressed = true;
            report.received += got as u64;
            let now = clock.now();
            for pkt in rx_batch.drain(..) {
                match wire::decode(pkt.as_slice()) {
                    Ok((hdr, _)) if hdr.kind == wire::Kind::Request => {
                        let ty = classifier.classify(pkt.as_slice());
                        if ty.is_unknown() || ty.index() >= num_types {
                            report.unknown += 1;
                        } else {
                            report.classified += 1;
                        }
                        let id = hdr.id;
                        if let Err((buf, _)) = engine.enqueue(ty, (pkt, id), now) {
                            report.dropped += 1;
                            respond_control(
                                &dispatcher_ctx,
                                buf,
                                wire::Status::Dropped,
                                &mut report,
                            );
                        }
                    }
                    _ => {
                        report.malformed += 1;
                        if let Some(t) = engine.telemetry() {
                            t.record_rx_malformed();
                        }
                        respond_control(
                            &dispatcher_ctx,
                            pkt,
                            wire::Status::BadRequest,
                            &mut report,
                        );
                    }
                }
            }
        }

        // 2. Fold in completions (frees engine workers, feeds profiling):
        // one batched pop per worker ring, one timestamp per batch.
        for (w, rx) in completion_rx.iter_mut().enumerate() {
            let n = rx.pop_batch(&mut comp_batch, usize::MAX);
            if n == 0 {
                continue;
            }
            progressed = true;
            report.completed += n as u64;
            let now = clock.now();
            for c in comp_batch.drain(..) {
                engine.complete(WorkerId::new(w as u32), c.service, now);
            }
        }

        // 3. Overload control: quarantine stalled workers, then shed
        // queued requests that have already blown their deadline. The
        // shed notices go out as one TX batch.
        let now = clock.now();
        engine.check_health(now);
        engine.expire_heads(now);
        while let Some((_ty, (buf, _id))) = engine.take_expired() {
            progressed = true;
            report.expired += 1;
            if let Some(p) = rewrite_control(buf, wire::Status::Dropped) {
                ctrl_batch.push(p);
            }
        }
        flush_control_batch(&dispatcher_ctx, &mut ctrl_batch, &mut report);

        // 4. DARC dispatch: run Algorithm 1 until no placement is possible.
        while let Some(d) = engine.poll(now) {
            progressed = true;
            report.dispatched += 1;
            let (buf, id) = d.req;
            let msg = WorkMsg::Request { buf, ty: d.ty, id };
            // Each engine worker has at most one in-flight request, so a
            // full ring (depth ≥ 2) should be impossible — but a protocol
            // hiccup must not panic the dispatcher. Hold the message and
            // re-offer it next iteration; the engine already counts the
            // worker busy, so no second dispatch can race into the slot.
            // audit:allow(A1): the engine only hands out workers below
            // num_workers == work_tx.len() == held.len()
            if let Err(back) = work_tx[d.worker.index()].push(msg) {
                held[d.worker.index()] = Some(back.0);
            }
        }

        // 5. Orderly shutdown once quiescent.
        if !progressed {
            if shutdown.load(Ordering::Acquire) {
                // Answer everything still queued with `Dropped` rather
                // than silently discarding it — as one TX batch.
                let now = clock.now();
                drain_buf.clear();
                engine.drain_all(now, &mut drain_buf);
                for (_ty, (buf, _id)) in drain_buf.drain(..) {
                    report.shed_at_shutdown += 1;
                    if let Some(p) = rewrite_control(buf, wire::Status::Dropped) {
                        ctrl_batch.push(p);
                    }
                }
                // A message held for a quarantined worker will never be
                // deliverable (its ring is wedged); shed it too so
                // shutdown cannot hang on a stalled core.
                for (w, slot) in held.iter_mut().enumerate() {
                    if engine.is_quarantined(WorkerId::new(w as u32)) {
                        if let Some(WorkMsg::Request { buf, .. }) = slot.take() {
                            report.shed_at_shutdown += 1;
                            if let Some(p) = rewrite_control(buf, wire::Status::Dropped) {
                                ctrl_batch.push(p);
                            }
                        }
                    }
                }
                flush_control_batch(&dispatcher_ctx, &mut ctrl_batch, &mut report);
                // Quiescence deliberately excludes quarantined workers:
                // waiting on a stalled core would turn one fault into a
                // full-server hang.
                if engine.total_pending() == 0
                    && engine.quiescent()
                    && held.iter().all(|h| h.is_none())
                {
                    break;
                }
            }
            idle_spins = idle_spins.saturating_add(1);
            // audit:allow(A3): the opt-in idle-backoff ladder — parks only
            // after IDLE_SPINS_BEFORE_PARK unproductive iterations
            match idle_backoff {
                Some(park) if idle_spins > IDLE_SPINS_BEFORE_PARK => std::thread::sleep(park),
                _ => std::thread::yield_now(),
            }
        } else {
            idle_spins = 0;
        }
    }

    for tx in &mut work_tx {
        let mut msg = WorkMsg::Shutdown;
        while let Err(back) = tx.push(msg) {
            msg = back.0;
            std::thread::yield_now();
        }
    }

    let engine_report = engine.report();
    // audit:allow(A2): teardown, after the dispatch loop has exited
    report.policy = engine_report.policy.to_string();
    report.quarantines = engine_report.quarantines;
    report.releases = engine_report.releases;
    report.reservation_updates = engine_report.updates;
    report.guaranteed = engine_report.guaranteed;
    report.telemetry = engine.telemetry().map(|t| t.snapshot()).unwrap_or_default();
    report
}

/// Rewrites a request in place into a header-only control response
/// (drop/bad-request); undecodable packets yield `None` and are simply
/// discarded.
fn rewrite_control(mut pkt: PacketBuf, status: wire::Status) -> Option<PacketBuf> {
    let ok = pkt.len() >= wire::HEADER_LEN
        && wire::request_to_response_in_place(pkt.raw_mut(), status).is_ok();
    if !ok {
        return None;
    }
    pkt.set_len(wire::HEADER_LEN);
    Some(pkt)
}

/// Sends a single control response with bounded retries (best-effort UDP
/// semantics), counting a give-up in the report.
fn respond_control(
    ctx: &NetContext,
    pkt: PacketBuf,
    status: wire::Status,
    report: &mut DispatcherReport,
) {
    if let Some(p) = rewrite_control(pkt, status) {
        if ctx.send_with_retry(p, CONTROL_TX_ATTEMPTS).is_err() {
            report.tx_give_ups += 1;
        }
    }
}

/// Transmits the accumulated control responses as one batch, counting
/// undelivered packets as give-ups. Leaves `batch` empty for reuse.
fn flush_control_batch(
    ctx: &NetContext,
    batch: &mut Vec<PacketBuf>,
    report: &mut DispatcherReport,
) {
    if batch.is_empty() {
        return;
    }
    let total = batch.len();
    let delivered = ctx.send_batch(batch.drain(..), CONTROL_TX_ATTEMPTS);
    report.tx_give_ups += (total - delivered) as u64;
}
