//! The Perséphone dispatcher thread (paper §4.3.3).
//!
//! One thread plays both the net worker and the dispatcher role (the
//! paper colocates them on one hardware thread): it drains the NIC RX
//! queue, classifies requests with the user-provided classifier, pushes
//! them into the DARC engine's typed queues, executes the engine's
//! dispatch decisions over per-worker SPSC rings, and folds completion
//! notifications back into the engine (profiling + reservation updates).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use persephone_core::classifier::Classifier;
use persephone_core::dispatch::DarcEngine;
use persephone_core::types::{TypeId, WorkerId};
use persephone_net::nic::{NetContext, ServerPort};
use persephone_net::pool::PacketBuf;
use persephone_net::spsc;
use persephone_net::wire;
use persephone_telemetry::Snapshot;

use crate::clock::RuntimeClock;
use crate::messages::{Completion, WorkMsg};

/// A queued request: its buffer plus the decoded wire id.
pub type Pending = (PacketBuf, u64);

/// Counters and final engine state returned when the dispatcher exits.
#[derive(Clone, Debug, Default)]
pub struct DispatcherReport {
    /// Packets pulled off the NIC.
    pub received: u64,
    /// Requests that decoded and classified to a registered type.
    pub classified: u64,
    /// Requests classified as UNKNOWN (still served, on the spillway).
    pub unknown: u64,
    /// Malformed packets answered with `BadRequest`.
    pub malformed: u64,
    /// Requests shed by typed-queue flow control.
    pub dropped: u64,
    /// Requests pushed to workers.
    pub dispatched: u64,
    /// Completions folded back into the engine.
    pub completed: u64,
    /// Reservation updates installed (including the warm-up exit).
    pub reservation_updates: u64,
    /// Final guaranteed (reserved) cores per type.
    pub guaranteed: Vec<usize>,
    /// Telemetry snapshot taken as the dispatcher exits (empty when the
    /// engine has no [`persephone_telemetry::Telemetry`] attached).
    pub telemetry: Snapshot,
}

/// Runs the dispatcher until `shutdown` is set *and* all in-flight work
/// has drained.
#[allow(clippy::too_many_arguments)]
pub fn run_dispatcher(
    mut port: ServerPort,
    dispatcher_ctx: NetContext,
    mut classifier: Box<dyn Classifier>,
    mut engine: DarcEngine<Pending>,
    mut work_tx: Vec<spsc::Producer<WorkMsg>>,
    mut completion_rx: Vec<spsc::Consumer<Completion>>,
    shutdown: Arc<AtomicBool>,
    clock: RuntimeClock,
) -> DispatcherReport {
    assert_eq!(work_tx.len(), engine.num_workers());
    assert_eq!(completion_rx.len(), engine.num_workers());
    let mut report = DispatcherReport::default();
    let num_types = engine.num_types();

    loop {
        let mut progressed = false;

        // 1. Net-worker role: drain a batch from the NIC RX queue.
        for _ in 0..64 {
            let Some(pkt) = port.recv() else { break };
            progressed = true;
            report.received += 1;
            let now = clock.now();
            match wire::decode(pkt.as_slice()) {
                Ok((hdr, _)) if hdr.kind == wire::Kind::Request => {
                    let ty = classifier.classify(pkt.as_slice());
                    if ty.is_unknown() || ty.index() >= num_types {
                        report.unknown += 1;
                    } else {
                        report.classified += 1;
                    }
                    let id = hdr.id;
                    if let Err((buf, _)) = engine.enqueue(ty, (pkt, id), now) {
                        report.dropped += 1;
                        respond_control(&dispatcher_ctx, buf, wire::Status::Dropped);
                    }
                }
                _ => {
                    report.malformed += 1;
                    respond_control(&dispatcher_ctx, pkt, wire::Status::BadRequest);
                }
            }
        }

        // 2. Fold in completions (frees engine workers, feeds profiling).
        for (w, rx) in completion_rx.iter_mut().enumerate() {
            while let Some(c) = rx.pop() {
                progressed = true;
                report.completed += 1;
                engine.complete(WorkerId::new(w as u32), c.service, clock.now());
            }
        }

        // 3. DARC dispatch: run Algorithm 1 until no placement is possible.
        let now = clock.now();
        while let Some(d) = engine.poll(now) {
            progressed = true;
            report.dispatched += 1;
            let (buf, id) = d.req;
            let msg = WorkMsg::Request { buf, ty: d.ty, id };
            // Each engine worker has at most one in-flight request, so the
            // ring (depth ≥ 2) cannot be full.
            work_tx[d.worker.index()]
                .push(msg)
                .unwrap_or_else(|_| panic!("work ring for worker {} full", d.worker));
        }

        // 4. Orderly shutdown once quiescent.
        if !progressed {
            if shutdown.load(Ordering::Acquire)
                && engine.total_pending() == 0
                && engine.free_workers() == engine.num_workers()
            {
                break;
            }
            std::thread::yield_now();
        }
    }

    for tx in &mut work_tx {
        let mut msg = WorkMsg::Shutdown;
        while let Err(back) = tx.push(msg) {
            msg = back.0;
            std::thread::yield_now();
        }
    }

    report.reservation_updates = engine.updates();
    report.guaranteed = (0..num_types)
        .map(|i| engine.guaranteed_workers(TypeId::new(i as u32)))
        .collect();
    report.telemetry = engine.telemetry().map(|t| t.snapshot()).unwrap_or_default();
    report
}

/// Sends a control response (drop/bad-request) by rewriting the packet in
/// place when possible; undecodable packets are simply discarded.
fn respond_control(ctx: &NetContext, mut pkt: PacketBuf, status: wire::Status) {
    let ok = pkt.len() >= wire::HEADER_LEN
        && wire::request_to_response_in_place(pkt.raw_mut(), status).is_ok();
    if !ok {
        return;
    }
    let mut p = pkt;
    p.set_len(wire::HEADER_LEN);
    // Bounded retries: control responses are best-effort (UDP semantics).
    let mut msg = p;
    for _ in 0..10_000 {
        match ctx.send(msg) {
            Ok(()) => break,
            Err(e) => {
                msg = e.0;
                std::thread::yield_now();
            }
        }
    }
}
