//! The Perséphone dispatcher thread (paper §4.3.3).
//!
//! One thread plays both the net worker and the dispatcher role (the
//! paper colocates them on one hardware thread): it drains the NIC RX
//! queue, classifies requests with the user-provided classifier, pushes
//! them into the DARC engine's typed queues, executes the engine's
//! dispatch decisions over per-worker SPSC rings, and folds completion
//! notifications back into the engine (profiling + reservation updates).
//!
//! ## Overload control
//!
//! Each loop iteration also runs the engine's graceful-degradation
//! machinery: [`DarcEngine::check_health`] quarantines workers that have
//! held a request for far longer than the type's profiled mean (their
//! reserved cores are re-covered via the spillway), and
//! [`DarcEngine::expire_heads`] sheds head-of-queue requests whose
//! queueing delay has already blown the slowdown SLO — those are answered
//! with [`wire::Status::Dropped`] so the client can retry elsewhere
//! instead of waiting on a response that would arrive too late to matter.
//!
//! A dispatch decision whose worker ring is momentarily full is *held*
//! (one slot per worker) and re-offered on the next iteration rather than
//! panicking the dispatcher thread; at shutdown, still-queued requests
//! are drained and answered with `Dropped` instead of silently discarded.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use persephone_core::classifier::Classifier;
use persephone_core::dispatch::DarcEngine;
use persephone_core::types::{TypeId, WorkerId};
use persephone_net::nic::{NetContext, ServerPort};
use persephone_net::pool::PacketBuf;
use persephone_net::spsc;
use persephone_net::wire;
use persephone_telemetry::Snapshot;

use crate::clock::RuntimeClock;
use crate::messages::{Completion, WorkMsg};

/// A queued request: its buffer plus the decoded wire id.
pub type Pending = (PacketBuf, u64);

/// Counters and final engine state returned when the dispatcher exits.
#[derive(Clone, Debug, Default)]
pub struct DispatcherReport {
    /// Packets pulled off the NIC.
    pub received: u64,
    /// Requests that decoded and classified to a registered type.
    pub classified: u64,
    /// Requests classified as UNKNOWN (still served, on the spillway).
    pub unknown: u64,
    /// Malformed packets answered with `BadRequest`.
    pub malformed: u64,
    /// Requests shed by typed-queue flow control.
    pub dropped: u64,
    /// Requests pushed to workers.
    pub dispatched: u64,
    /// Completions folded back into the engine.
    pub completed: u64,
    /// Queued requests past their slowdown-SLO deadline, answered with
    /// `Dropped` before ever reaching a worker.
    pub expired: u64,
    /// Requests still queued (or held for a quarantined worker) at
    /// shutdown, answered with `Dropped` instead of silently discarded.
    pub shed_at_shutdown: u64,
    /// Workers quarantined by the wall-clock health check.
    pub quarantines: u64,
    /// Quarantined workers released after their late completion arrived.
    pub releases: u64,
    /// Control responses abandoned after the bounded TX retry gave up.
    pub tx_give_ups: u64,
    /// Reservation updates installed (including the warm-up exit).
    pub reservation_updates: u64,
    /// Final guaranteed (reserved) cores per type.
    pub guaranteed: Vec<usize>,
    /// Telemetry snapshot taken as the dispatcher exits (empty when the
    /// engine has no [`persephone_telemetry::Telemetry`] attached).
    pub telemetry: Snapshot,
}

/// Runs the dispatcher until `shutdown` is set *and* all in-flight work
/// has drained.
#[allow(clippy::too_many_arguments)]
pub fn run_dispatcher(
    mut port: ServerPort,
    dispatcher_ctx: NetContext,
    mut classifier: Box<dyn Classifier>,
    mut engine: DarcEngine<Pending>,
    mut work_tx: Vec<spsc::Producer<WorkMsg>>,
    mut completion_rx: Vec<spsc::Consumer<Completion>>,
    shutdown: Arc<AtomicBool>,
    clock: RuntimeClock,
) -> DispatcherReport {
    assert_eq!(work_tx.len(), engine.num_workers());
    assert_eq!(completion_rx.len(), engine.num_workers());
    let mut report = DispatcherReport::default();
    let num_types = engine.num_types();
    // Dispatch decisions whose worker ring rejected the push, held for
    // re-offer. The one-in-flight-per-worker protocol means at most one
    // held message per worker, so a fixed slot each suffices.
    let mut held: Vec<Option<WorkMsg>> = (0..engine.num_workers()).map(|_| None).collect();

    loop {
        let mut progressed = false;

        // 0. Re-offer messages held from a previously full worker ring.
        for w in 0..held.len() {
            if let Some(msg) = held[w].take() {
                match work_tx[w].push(msg) {
                    Ok(()) => progressed = true,
                    Err(back) => held[w] = Some(back.0),
                }
            }
        }

        // 1. Net-worker role: drain a batch from the NIC RX queue.
        for _ in 0..64 {
            let Some(pkt) = port.recv() else { break };
            progressed = true;
            report.received += 1;
            let now = clock.now();
            match wire::decode(pkt.as_slice()) {
                Ok((hdr, _)) if hdr.kind == wire::Kind::Request => {
                    let ty = classifier.classify(pkt.as_slice());
                    if ty.is_unknown() || ty.index() >= num_types {
                        report.unknown += 1;
                    } else {
                        report.classified += 1;
                    }
                    let id = hdr.id;
                    if let Err((buf, _)) = engine.enqueue(ty, (pkt, id), now) {
                        report.dropped += 1;
                        respond_control(&dispatcher_ctx, buf, wire::Status::Dropped, &mut report);
                    }
                }
                _ => {
                    report.malformed += 1;
                    respond_control(&dispatcher_ctx, pkt, wire::Status::BadRequest, &mut report);
                }
            }
        }

        // 2. Fold in completions (frees engine workers, feeds profiling).
        for (w, rx) in completion_rx.iter_mut().enumerate() {
            while let Some(c) = rx.pop() {
                progressed = true;
                report.completed += 1;
                engine.complete(WorkerId::new(w as u32), c.service, clock.now());
            }
        }

        // 3. Overload control: quarantine stalled workers, then shed
        // queued requests that have already blown their deadline.
        let now = clock.now();
        engine.check_health(now);
        engine.expire_heads(now);
        while let Some((_ty, (buf, _id))) = engine.take_expired() {
            progressed = true;
            report.expired += 1;
            respond_control(&dispatcher_ctx, buf, wire::Status::Dropped, &mut report);
        }

        // 4. DARC dispatch: run Algorithm 1 until no placement is possible.
        while let Some(d) = engine.poll(now) {
            progressed = true;
            report.dispatched += 1;
            let (buf, id) = d.req;
            let msg = WorkMsg::Request { buf, ty: d.ty, id };
            // Each engine worker has at most one in-flight request, so a
            // full ring (depth ≥ 2) should be impossible — but a protocol
            // hiccup must not panic the dispatcher. Hold the message and
            // re-offer it next iteration; the engine already counts the
            // worker busy, so no second dispatch can race into the slot.
            if let Err(back) = work_tx[d.worker.index()].push(msg) {
                held[d.worker.index()] = Some(back.0);
            }
        }

        // 5. Orderly shutdown once quiescent.
        if !progressed {
            if shutdown.load(Ordering::Acquire) {
                // Answer everything still queued with `Dropped` rather
                // than silently discarding it.
                let now = clock.now();
                for (_ty, (buf, _id)) in engine.drain_all(now) {
                    report.shed_at_shutdown += 1;
                    respond_control(&dispatcher_ctx, buf, wire::Status::Dropped, &mut report);
                }
                // A message held for a quarantined worker will never be
                // deliverable (its ring is wedged); shed it too so
                // shutdown cannot hang on a stalled core.
                for (w, slot) in held.iter_mut().enumerate() {
                    if engine.is_quarantined(WorkerId::new(w as u32)) {
                        if let Some(WorkMsg::Request { buf, .. }) = slot.take() {
                            report.shed_at_shutdown += 1;
                            respond_control(
                                &dispatcher_ctx,
                                buf,
                                wire::Status::Dropped,
                                &mut report,
                            );
                        }
                    }
                }
                // Quiescence deliberately excludes quarantined workers:
                // waiting on a stalled core would turn one fault into a
                // full-server hang.
                if engine.total_pending() == 0
                    && engine.quiescent()
                    && held.iter().all(|h| h.is_none())
                {
                    break;
                }
            }
            std::thread::yield_now();
        }
    }

    for tx in &mut work_tx {
        let mut msg = WorkMsg::Shutdown;
        while let Err(back) = tx.push(msg) {
            msg = back.0;
            std::thread::yield_now();
        }
    }

    report.quarantines = engine.quarantines();
    report.releases = engine.releases();
    report.reservation_updates = engine.updates();
    report.guaranteed = (0..num_types)
        .map(|i| engine.guaranteed_workers(TypeId::new(i as u32)))
        .collect();
    report.telemetry = engine.telemetry().map(|t| t.snapshot()).unwrap_or_default();
    report
}

/// Sends a control response (drop/bad-request) by rewriting the packet in
/// place when possible; undecodable packets are simply discarded.
fn respond_control(
    ctx: &NetContext,
    mut pkt: PacketBuf,
    status: wire::Status,
    report: &mut DispatcherReport,
) {
    let ok = pkt.len() >= wire::HEADER_LEN
        && wire::request_to_response_in_place(pkt.raw_mut(), status).is_ok();
    if !ok {
        return;
    }
    let mut p = pkt;
    p.set_len(wire::HEADER_LEN);
    // Bounded retries: control responses are best-effort (UDP semantics).
    if ctx.send_with_retry(p, 10_000).is_err() {
        report.tx_give_ups += 1;
    }
}
