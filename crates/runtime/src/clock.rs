//! Monotonic runtime clock mapped onto the workspace's [`Nanos`] type.

use std::time::Instant;

use persephone_core::time::Nanos;

/// A monotonic clock anchored at construction time.
///
/// # Examples
///
/// ```
/// use persephone_runtime::clock::RuntimeClock;
///
/// let clock = RuntimeClock::start();
/// let a = clock.now();
/// let b = clock.now();
/// assert!(b >= a);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct RuntimeClock {
    origin: Instant,
}

impl RuntimeClock {
    /// Starts a clock at the current instant.
    pub fn start() -> Self {
        RuntimeClock {
            origin: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the clock started.
    #[inline]
    pub fn now(&self) -> Nanos {
        Nanos::from_nanos(self.origin.elapsed().as_nanos() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let c = RuntimeClock::start();
        let mut last = c.now();
        for _ in 0..1000 {
            let now = c.now();
            assert!(now >= last);
            last = now;
        }
    }

    #[test]
    fn clock_advances() {
        let c = RuntimeClock::start();
        let a = c.now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(c.now() > a + Nanos::from_millis(1));
    }
}
