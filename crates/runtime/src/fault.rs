//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] describes misbehaviour to inject into an otherwise
//! healthy pipeline: a worker that stalls mid-run for a fixed duration
//! (driving the dispatcher's quarantine path) pairs with the NIC-level
//! packet dropping of [`persephone_net::nic::NicFaultPlan`] (driving the
//! load generator's client-side timeout accounting). Plans are plain data
//! — no randomness — so every chaos run is exactly reproducible.

use std::time::Duration;

/// A one-shot worker stall: after the worker has handled
/// `after_requests` requests, it sleeps for `stall` while holding its
/// next request — exactly what a page fault storm, a GC pause, or a
/// hardware hiccup looks like to the dispatcher.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StallFault {
    /// Requests the worker handles normally before the stall fires.
    pub after_requests: u64,
    /// How long the worker blocks.
    pub stall: Duration,
}

/// Per-worker fault assignments for a server run.
///
/// The default plan injects nothing, so production configs pay only an
/// `Option` check per worker at spawn time.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    stalls: Vec<(usize, StallFault)>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds a one-shot stall for `worker` (later entries for the same
    /// worker replace earlier ones).
    pub fn stall_worker(mut self, worker: usize, after_requests: u64, stall: Duration) -> Self {
        self.stalls.retain(|(w, _)| *w != worker);
        self.stalls.push((
            worker,
            StallFault {
                after_requests,
                stall,
            },
        ));
        self
    }

    /// The stall fault assigned to `worker`, if any.
    pub fn for_worker(&self, worker: usize) -> Option<StallFault> {
        self.stalls
            .iter()
            .find(|(w, _)| *w == worker)
            .map(|(_, f)| *f)
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.stalls.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_assigns_per_worker() {
        let plan = FaultPlan::none()
            .stall_worker(0, 5, Duration::from_millis(100))
            .stall_worker(2, 0, Duration::from_millis(50))
            .stall_worker(0, 9, Duration::from_millis(1));
        assert!(!plan.is_empty());
        assert_eq!(
            plan.for_worker(0),
            Some(StallFault {
                after_requests: 9,
                stall: Duration::from_millis(1)
            }),
            "later assignment replaces the earlier one"
        );
        assert_eq!(plan.for_worker(1), None);
        assert_eq!(plan.for_worker(2).unwrap().after_requests, 0);
        assert!(FaultPlan::none().is_empty());
    }
}
