//! # persephone — umbrella crate
//!
//! A from-scratch Rust reproduction of **Perséphone** (SOSP 2021): the
//! DARC non-work-conserving kernel-bypass scheduler, a discrete-event
//! simulator reproducing every figure of the paper's evaluation, an
//! in-process threaded runtime of the full dispatcher/worker pipeline,
//! and application substrates (ordered KV store, mini TPC-C).
//!
//! This crate re-exports the workspace members under stable names:
//!
//! * [`core`] — DARC itself: classifiers, profiler, reservations,
//!   dispatch (crate `persephone-core`).
//! * [`sim`] — the discrete-event simulator and experiment harness
//!   (crate `persephone-sim`).
//! * [`net`] — lock-free rings, buffer pool, wire format, loopback NIC
//!   (crate `persephone-net`).
//! * [`runtime`] — the threaded Perséphone pipeline (crate
//!   `persephone-runtime`).
//! * [`store`] — KV store, TPC-C, calibrated spin work (crate
//!   `persephone-store`).
//! * [`telemetry`] — zero-allocation histograms, counters, and the
//!   scheduler-decision event ring (crate `persephone-telemetry`).
//! * [`rack`] — the rack-scale steering tier: inter-server policies over
//!   N servers, in the simulator and live (crate `persephone-rack`).
//! * [`scenario`] — declarative TOML workload scenarios runnable on both
//!   backends, emitting `BENCH_*.json` reports (crate
//!   `persephone-scenario`; also the `scenario` CLI binary).
//!
//! For application code, [`prelude`] pulls in the names needed to stand
//! up a server and drive load against it:
//!
//! ```
//! use persephone::prelude::*;
//! # let _ = ServerBuilder::new(2, 1);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/src/bin/` for the figure-regeneration binaries.

#![forbid(unsafe_code)]

pub use persephone_core as core;
pub use persephone_net as net;
pub use persephone_rack as rack;
pub use persephone_runtime as runtime;
pub use persephone_scenario as scenario;
pub use persephone_sim as sim;
pub use persephone_store as store;
pub use persephone_telemetry as telemetry;

/// One-stop imports for building and driving a Perséphone server.
///
/// Covers the common path — classifier, engine configuration,
/// [`ServerBuilder`](persephone_runtime::server::ServerBuilder), loopback
/// NIC, wire format, load generator, and application substrates — so
/// examples and application code start with a single
/// `use persephone::prelude::*;`.
pub mod prelude {
    pub use persephone_core::classifier::{
        Classifier, FixedClassifier, FnClassifier, HeaderClassifier, RandomClassifier,
    };
    pub use persephone_core::dispatch::{
        build_engine, CfcfsEngine, DarcEngine, DfcfsEngine, Dispatch, EngineConfig, EngineMode,
        EngineReport, FixedPriorityEngine, OverloadConfig, ReserveTuning, ScheduleEngine,
        SjfEngine, SloQueueBounds,
    };
    pub use persephone_core::policy::Policy;
    pub use persephone_core::time::Nanos;
    pub use persephone_core::types::{TypeId, WorkerId};
    pub use persephone_net::nic::{
        self, loopback, loopback_mq, ClientPort, NicFaultPlan, ServerPort, Steering,
    };
    pub use persephone_net::pool::BufferPool;
    pub use persephone_net::udp::{self, UdpConfig, UdpQueueStats};
    pub use persephone_net::wire::{self, Kind, Status};
    pub use persephone_rack::{
        build_rack_policy, run_rack_scheduled, RackLoadReport, RackLoads, RackMember, RackPolicy,
        RackReport, RackSim,
    };
    pub use persephone_runtime::dispatcher::DispatcherReport;
    pub use persephone_runtime::fault::FaultPlan;
    pub use persephone_runtime::handler::{
        KvHandler, PayloadSleepHandler, PayloadSpinHandler, RequestHandler, SpinHandler,
        TpccHandler,
    };
    pub use persephone_runtime::loadgen::{
        run_open_loop, run_scheduled, LoadReport, LoadSpec, LoadType, ScheduledRequest,
    };
    pub use persephone_runtime::server::{
        BoundTransport, RuntimeReport, ServerBuilder, ServerHandle, Transport,
    };
    pub use persephone_runtime::worker::WorkerReport;
    pub use persephone_scenario::{Backend, BenchReport, ScenarioSpec};
    pub use persephone_store::kv::KvStore;
    pub use persephone_store::spin::SpinCalibration;
    pub use persephone_store::tpcc::TpccDb;
    pub use persephone_telemetry::{Snapshot, Telemetry};
}
