//! # persephone — umbrella crate
//!
//! A from-scratch Rust reproduction of **Perséphone** (SOSP 2021): the
//! DARC non-work-conserving kernel-bypass scheduler, a discrete-event
//! simulator reproducing every figure of the paper's evaluation, an
//! in-process threaded runtime of the full dispatcher/worker pipeline,
//! and application substrates (ordered KV store, mini TPC-C).
//!
//! This crate re-exports the workspace members under stable names:
//!
//! * [`core`] — DARC itself: classifiers, profiler, reservations,
//!   dispatch (crate `persephone-core`).
//! * [`sim`] — the discrete-event simulator and experiment harness
//!   (crate `persephone-sim`).
//! * [`net`] — lock-free rings, buffer pool, wire format, loopback NIC
//!   (crate `persephone-net`).
//! * [`runtime`] — the threaded Perséphone pipeline (crate
//!   `persephone-runtime`).
//! * [`store`] — KV store, TPC-C, calibrated spin work (crate
//!   `persephone-store`).
//! * [`telemetry`] — zero-allocation histograms, counters, and the
//!   scheduler-decision event ring (crate `persephone-telemetry`).
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/src/bin/` for the figure-regeneration binaries.

#![forbid(unsafe_code)]

pub use persephone_core as core;
pub use persephone_net as net;
pub use persephone_runtime as runtime;
pub use persephone_sim as sim;
pub use persephone_store as store;
pub use persephone_telemetry as telemetry;
