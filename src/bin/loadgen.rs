//! External UDP load generator: the client half of a two-process
//! Perséphone deployment.
//!
//! Where the in-process harness wires [`run_open_loop`] straight onto a
//! loopback port, this binary points the same open-loop Poisson client at
//! real sockets — a server started with `Transport::Udp` (see
//! `examples/udp_server.rs`), on this machine or another one:
//!
//! ```text
//! loadgen --connect 127.0.0.1:9000,127.0.0.1:9001 --rate 5000 --duration-ms 2000
//! ```
//!
//! Each request's first 8 payload bytes carry its service demand in
//! little-endian nanoseconds (the `PayloadSpinHandler` convention), so
//! the server burns exactly the CPU the client asked for. The run's
//! ledger and latency percentiles are printed as one JSON object on
//! stdout.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use persephone::prelude::*;

struct Args {
    connect: Vec<SocketAddr>,
    shards: Option<usize>,
    rate: f64,
    duration_ms: u64,
    grace_ms: u64,
    types: usize,
    service_us: Vec<u64>,
    payload_bytes: usize,
    seed: u64,
    pool: usize,
    buf_size: usize,
    steering: String,
}

const USAGE: &str = "usage: loadgen --connect host:port[,host:port...] [options]

  --connect ADDRS     comma-separated shard sockets; with --shards K and a
                      single address, shard i targets port base+i
  --shards K          expand a single --connect address to K consecutive ports
  --rate RPS          offered Poisson rate, requests/s        [default 1000]
  --duration-ms MS    send window                             [default 1000]
  --grace-ms MS       straggler drain after the window        [default 500]
  --types N           request types, equal mix                [default 2]
  --service-us LIST   per-type service demand, microseconds   [default 1,100]
  --payload-bytes N   request payload size (min 8)            [default 16]
  --seed N            RNG seed                                [default 42]
  --pool N            client buffer pool size                 [default 256]
  --buf-size N        client buffer capacity, bytes           [default 2048]
  --steering MODE     rss | bytype                            [default rss]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        connect: Vec::new(),
        shards: None,
        rate: 1_000.0,
        duration_ms: 1_000,
        grace_ms: 500,
        types: 2,
        service_us: vec![1, 100],
        payload_bytes: 16,
        seed: 42,
        pool: 256,
        buf_size: 2048,
        steering: "rss".into(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let val = || -> Result<&str, String> {
            argv.get(i + 1)
                .map(|s| s.as_str())
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag {
            "--connect" => {
                args.connect = val()?
                    .split(',')
                    .map(|a| a.parse().map_err(|e| format!("bad address {a:?}: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--shards" => args.shards = Some(val()?.parse().map_err(|e| format!("{e}"))?),
            "--rate" => args.rate = val()?.parse().map_err(|e| format!("{e}"))?,
            "--duration-ms" => args.duration_ms = val()?.parse().map_err(|e| format!("{e}"))?,
            "--grace-ms" => args.grace_ms = val()?.parse().map_err(|e| format!("{e}"))?,
            "--types" => args.types = val()?.parse().map_err(|e| format!("{e}"))?,
            "--service-us" => {
                args.service_us = val()?
                    .split(',')
                    .map(|s| {
                        s.parse()
                            .map_err(|e| format!("bad service time {s:?}: {e}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--payload-bytes" => args.payload_bytes = val()?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = val()?.parse().map_err(|e| format!("{e}"))?,
            "--pool" => args.pool = val()?.parse().map_err(|e| format!("{e}"))?,
            "--buf-size" => args.buf_size = val()?.parse().map_err(|e| format!("{e}"))?,
            "--steering" => args.steering = val()?.to_string(),
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown flag {other:?}\n\n{USAGE}")),
        }
        i += 2;
    }
    if args.connect.is_empty() {
        return Err(format!("--connect is required\n\n{USAGE}"));
    }
    if let Some(k) = args.shards {
        if args.connect.len() == 1 && k > 1 {
            let base = args.connect[0];
            args.connect = (0..k)
                .map(|s| SocketAddr::new(base.ip(), base.port() + s as u16))
                .collect();
        } else if args.connect.len() != k {
            return Err(format!(
                "--shards {k} disagrees with {} --connect addresses",
                args.connect.len()
            ));
        }
    }
    if args.types == 0 {
        return Err("--types must be at least 1".into());
    }
    if args.payload_bytes < 8 {
        return Err("--payload-bytes must be at least 8 (service-time header)".into());
    }
    Ok(args)
}

fn json_u64_array(vals: &[u64]) -> String {
    let inner: Vec<String> = vals.iter().map(|v| v.to_string()).collect();
    format!("[{}]", inner.join(","))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let steering = match args.steering.as_str() {
        "rss" => Steering::Rss,
        // Round-robin type→shard table: type t lands on shard t % K, so
        // each type stays on one shard and its DARC profile coherent.
        "bytype" => Steering::ByType((0..args.types).map(|t| t % args.connect.len()).collect()),
        other => {
            eprintln!("unknown steering {other:?}; use rss or bytype");
            return ExitCode::FAILURE;
        }
    };
    let cfg = UdpConfig {
        buf_size: args.buf_size,
        pool_buffers: args.pool,
    };
    let mut client = match udp::client(&args.connect, steering, NicFaultPlan::default(), cfg) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("binding the client socket failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // One LoadType per requested type, equal ratios; the sampled service
    // demand travels in the first 8 payload bytes.
    let ratio = 1.0 / args.types as f64;
    let spec = LoadSpec::new(
        (0..args.types)
            .map(|t| {
                let us = args
                    .service_us
                    .get(t)
                    .or(args.service_us.last())
                    .copied()
                    .unwrap_or(1);
                let mut payload = vec![0u8; args.payload_bytes];
                payload[..8].copy_from_slice(&(us * 1_000).to_le_bytes());
                LoadType {
                    ty: t as u32,
                    ratio,
                    payload,
                }
            })
            .collect(),
    );

    let mut pool = BufferPool::new(args.pool, args.buf_size);
    let report = run_open_loop(
        &mut client,
        &mut pool,
        &spec,
        args.rate,
        Duration::from_millis(args.duration_ms),
        Duration::from_millis(args.grace_ms),
        args.seed,
    );

    let per_type: Vec<String> = (0..args.types)
        .map(|t| {
            format!(
                "{{\"type\":{t},\"count\":{},\"mean_ns\":{:.0},\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{}}}",
                report.latencies_ns[t].len(),
                report.mean_ns(t).unwrap_or(0.0),
                report.percentile_ns(t, 0.5).unwrap_or(0),
                report.percentile_ns(t, 0.99).unwrap_or(0),
                report.percentile_ns(t, 0.999).unwrap_or(0),
            )
        })
        .collect();
    println!(
        "{{\"sent\":{},\"received\":{},\"dropped\":{},\"rejected\":{},\"starved\":{},\
         \"timed_out\":{},\"per_queue_sent\":{},\"latency\":[{}]}}",
        report.sent,
        report.received,
        report.dropped,
        report.rejected,
        report.starved,
        report.timed_out,
        json_u64_array(&report.per_queue_sent),
        per_type.join(","),
    );
    ExitCode::SUCCESS
}
